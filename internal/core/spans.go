package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"fluodb/internal/otrace"
)

// Span timeline integration (DESIGN.md §14). The engine records a
// hierarchical timeline into the caller-supplied otrace.Tracer:
//
//	query
//	├── batch (one per mini-batch, also under recompute/resume replays)
//	│   ├── reclassify        controller track, per block
//	│   │   └── reclass-task  worker tracks (parallel tri-decisions)
//	│   ├── feed              controller track, per block
//	│   │   ├── task          worker tracks (shard folds)
//	│   │   └── serial-retry  controller track (containment redo)
//	│   └── ranges            controller track, per block
//	├── recompute             wraps failure-recovery replays
//	├── snapshot              result materialization
//	├── checkpoint / resume
//	└── prefetch              worker tracks; fills overlap the batch
//	                          tail, so they parent to the query span
//
// Span edges fire at batch/phase granularity — never per tuple — so
// the fold hot path is untouched and the steady state allocates
// nothing (pinned by the "spanned" mode of TestFoldSteadyStateAllocs).
// The currently open ancestry is carried in engine fields rather than
// threaded through every call: the controller is single-threaded, and
// workers only read the fields between a barrier's submit and wait.
// Every otrace call is nil-safe, so disabled spans cost only nil
// checks on batch-granular paths.

// spanInstant is the Tracer mirror hook: ring events attach to the
// timeline as instant events, correlated by Seq/Batch. Worker-scoped
// kinds land on the worker's track; everything else on the controller.
func (e *Engine) spanInstant(ev Event) {
	tid := 0
	switch ev.Kind {
	case EvFault, EvWorkerPanic:
		if ev.Worker >= 0 {
			tid = ev.Worker + 1
		}
	}
	note := ev.Note
	if note == "" {
		note = ev.Key
	}
	e.spans.Instant(ev.Kind, tid, ev.Batch, ev.Seq, note)
}

// workerSlab returns worker w's span slab (tid w+1; tid 0 is the
// controller). Nil when spans are disabled.
func (e *Engine) workerSlab(w int) *otrace.Slab {
	return e.spans.Slab(w + 1)
}

// timelineSummary renders the span timeline as a compact text section
// for Report(): per-name counts/totals and per-worker busy time.
func (e *Engine) timelineSummary() string {
	spans := e.spans.Spans()
	if len(spans) == 0 {
		return ""
	}
	type agg struct {
		n     int
		total time.Duration
	}
	byName := map[string]*agg{}
	workerBusy := map[int]time.Duration{}
	for _, s := range spans {
		a := byName[s.Name]
		if a == nil {
			a = &agg{}
			byName[s.Name] = a
		}
		a.n++
		a.total += s.Dur()
		if s.Tid > 0 {
			workerBusy[int(s.Tid)-1] += s.Dur()
		}
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return byName[names[i]].total > byName[names[j]].total
	})
	var b strings.Builder
	b.WriteString("timeline spans:")
	for _, n := range names {
		a := byName[n]
		fmt.Fprintf(&b, " %s=%d/%s", n, a.n, fmtDur(a.total))
	}
	b.WriteByte('\n')
	if len(workerBusy) > 0 {
		workers := make([]int, 0, len(workerBusy))
		for w := range workerBusy {
			workers = append(workers, w)
		}
		sort.Ints(workers)
		b.WriteString("worker busy:")
		for _, w := range workers {
			fmt.Fprintf(&b, " w%d=%s", w, fmtDur(workerBusy[w]))
		}
		b.WriteByte('\n')
	}
	if d := e.spans.DroppedSpans(); d > 0 {
		fmt.Fprintf(&b, "(%d spans dropped: slab capacity reached)\n", d)
	}
	return b.String()
}
