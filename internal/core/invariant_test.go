package core

import (
	"testing"

	"fluodb/internal/bootstrap"
	"fluodb/internal/types"
)

// TestAuditInvariantsCleanRun: a recomputing nested workload run to
// completion must end with every surviving committed decision agreeing
// with the (now exact) point state — zero violations — while the
// in-flight flips that forced its recomputes are counted in DetFlips.
func TestAuditInvariantsCleanRun(t *testing.T) {
	eng, _ := profiledQ17(t)
	if v := eng.AuditInvariants(); len(v) != 0 {
		t.Fatalf("clean completed run reported violations: %+v", v)
	}
	m := eng.Metrics()
	if m.InvariantViolations != 0 {
		t.Fatalf("InvariantViolations = %d, want 0", m.InvariantViolations)
	}
	// profiledQ17 is tuned to fail at least one committed range; every
	// failure is an in-flight flip (recovered by replay).
	if m.DetFlips == 0 {
		t.Fatal("recomputing workload reported DetFlips = 0")
	}
	if m.DetFlips < m.Recomputes {
		t.Fatalf("DetFlips = %d < Recomputes = %d (each recompute needs a flip)",
			m.DetFlips, m.Recomputes)
	}
}

// TestAuditInvariantsDetectsTampering: corrupting a surviving committed
// group range to exclude its point estimate must surface as a violation
// with the offending key, a det-violation trace event, and the metrics
// count.
func TestAuditInvariantsDetectsTampering(t *testing.T) {
	eng, tr := profiledQ17(t)
	if len(eng.bind.groups) == 0 {
		t.Fatal("Q17 must have a correlated group binding")
	}
	g := eng.bind.groups[0]
	var key string
	for _, k := range sortedKeys(g.committed) {
		if _, ok := g.point[k]; ok {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no committed group key with a point estimate")
	}
	f, _ := g.point[key].AsFloat()
	g.committed[key] = bootstrap.Range{Lo: f + 1, Hi: f + 2}

	vs := eng.AuditInvariants()
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want exactly the tampered one: %+v", len(vs), vs)
	}
	v := vs[0]
	if v.Kind != ViolGroupRange || v.Key != key || v.Point != f || v.Lo != f+1 {
		t.Fatalf("violation mismatch: %+v", v)
	}
	if eng.Metrics().InvariantViolations != 1 {
		t.Fatalf("InvariantViolations = %d, want 1", eng.Metrics().InvariantViolations)
	}
	found := false
	for _, ev := range tr.Events() {
		if ev.Kind == EvDetViolation && ev.Key == key && ev.Note == ViolGroupRange {
			found = true
		}
	}
	if !found {
		t.Fatal("no det-violation trace event emitted")
	}
}

// TestBindingsFlipCounting: the three contradiction sites (scalar range
// escape, group range escape, set membership flip) each bump the flips
// counter, and reset() — the replay path — preserves it.
func TestBindingsFlipCounting(t *testing.T) {
	b := newBindings(1, 1, 1, 8)

	commit := paramRange{status: rsOK, r: bootstrap.Range{Lo: 9, Hi: 11}}
	if b.updateScalar(0, types.NewFloat(10), nullValues(8), commit) {
		t.Fatal("first scalar update must commit, not fail")
	}
	if !b.updateScalar(0, types.NewFloat(20), nullValues(8), commit) {
		t.Fatal("escaping point must report failure")
	}
	if b.flips != 1 {
		t.Fatalf("flips = %d after scalar escape, want 1", b.flips)
	}

	if b.updateGroupEntry(0, "g", types.NewFloat(10), commit, true) {
		t.Fatal("first group update must commit, not fail")
	}
	if !b.updateGroupEntry(0, "g", types.NewFloat(20), commit, true) {
		t.Fatal("escaping group point must report failure")
	}
	if b.flips != 2 {
		t.Fatalf("flips = %d after group escape, want 2", b.flips)
	}

	if b.updateSetEntry(0, "k", true, triTrue) {
		t.Fatal("first membership must commit, not fail")
	}
	if !b.updateSetEntry(0, "k", false, triFalse) {
		t.Fatal("membership flip must report failure")
	}
	if b.flips != 3 {
		t.Fatalf("flips = %d after membership flip, want 3", b.flips)
	}

	b.reset()
	if b.flips != 3 {
		t.Fatalf("reset() cleared flips (= %d); replays must not lose the count", b.flips)
	}
}

// TestAuditInvariantsSetTampering covers the set-membership audit path
// directly on bindings wired into a minimal engine-shaped check.
func TestAuditInvariantsSetTampering(t *testing.T) {
	e := &Engine{bind: newBindings(0, 0, 1, 4)}
	s := e.bind.sets[0]
	s.point["a"] = true
	s.committed["a"] = true
	s.point["b"] = false
	s.committed["b"] = true // contradicted: committed member, point says no
	vs := e.AuditInvariants()
	if len(vs) != 1 || vs[0].Kind != ViolSetMembership || vs[0].Key != "b" {
		t.Fatalf("want one set-membership violation for key b, got %+v", vs)
	}
	if vs[0].Committed != true || vs[0].Member != false {
		t.Fatalf("membership sides lost: %+v", vs[0])
	}
}
