package core

import (
	"errors"
	"fmt"
	"testing"

	"fluodb/internal/chaos"
	"fluodb/internal/plan"
	"fluodb/internal/testutil"
)

// Sharded execution must be a pure implementation detail, like the
// worker pool: the N-shard trajectory is bit-identical to the
// single-engine run for any topology width and per-shard parallelism,
// and stays so across injected shard deaths recovered by the
// coordinator's ladder. The fixtures reuse the exact-float catalog of
// parallel_determinism_test.go, so "identical" means byte-for-byte.

// TestShardFoldBitIdentical sweeps N∈{1,2,4,8} × per-shard P∈{1,4}
// against the unsharded serial reference.
func TestShardFoldBitIdentical(t *testing.T) {
	for _, seed := range []uint64{1, 7, 23} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cat := determinismCatalog(3*8192, seed)
			serial := runSnapshots(t, cat, determinismSQL, determinismOptions(seed))
			for _, n := range []int{1, 2, 4, 8} {
				for _, p := range []int{1, 4} {
					o := determinismOptions(seed)
					o.Shards = n
					o.Parallelism = p
					compareSnapshots(t, fmt.Sprintf("shards N=%d P=%d", n, p),
						serial, runSnapshots(t, cat, determinismSQL, o))
				}
			}
		})
	}
}

// runShardMetrics runs a sharded query to completion and returns its
// snapshots plus final metrics (runSnapshots drops the engine).
func runShardMetrics(t *testing.T, o Options, seed uint64) ([]*Snapshot, Metrics) {
	t.Helper()
	cat := determinismCatalog(3*8192, seed)
	q, err := plan.Compile(determinismSQL, cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(q, cat, o)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var snaps []*Snapshot
	for {
		snap, err := eng.Step()
		if err == ErrDone {
			return snaps, eng.Metrics()
		}
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, snap)
	}
}

// TestShardKillRecovery injects moderate-probability shard deaths and
// asserts recovery rung 1 (replacement re-dispatch) keeps the
// trajectory bit-identical to an undisturbed unsharded run.
func TestShardKillRecovery(t *testing.T) {
	const seed = 7
	baseline := testutil.GoroutineBaseline()
	cat := determinismCatalog(3*8192, seed)
	serial := runSnapshots(t, cat, determinismSQL, determinismOptions(seed))

	o := determinismOptions(seed)
	o.Shards = 4
	o.Chaos = chaos.New(chaos.Config{Seed: 0xC0FFEE, ShardKillProb: 0.3})
	snaps, m := runShardMetrics(t, o, seed)
	compareSnapshots(t, "kill-recovered N=4", serial, snaps)
	if m.ShardKills == 0 {
		t.Fatal("fixture chosen to kill shards reported ShardKills = 0")
	}
	if m.ShardRespawns == 0 {
		t.Fatal("shard kills recovered without any respawn")
	}
	testutil.VerifyNoLeaks(t, baseline)
}

// TestShardStragglerBitIdentical injects shard delays (benign for
// correctness — merge order is fixed by shard slot) and checks
// bit-identity plus fault accounting.
func TestShardStragglerBitIdentical(t *testing.T) {
	const seed = 1
	cat := determinismCatalog(3*8192, seed)
	serial := runSnapshots(t, cat, determinismSQL, determinismOptions(seed))

	o := determinismOptions(seed)
	o.Shards = 4
	inj := chaos.New(chaos.Config{Seed: 0xBEEF, ShardStragglerProb: 0.5})
	o.Chaos = inj
	compareSnapshots(t, "straggler N=4", serial, runSnapshots(t, cat, determinismSQL, o))
	if inj.Counts()[chaos.KindShardStraggler] == 0 {
		t.Fatal("fixture chosen to delay shards reported no shard-straggler faults")
	}
}

// TestShardCheckpointRestoreMidRun raises the kill probability until
// rung 1 (three replacement incarnations per slice) is exhausted at
// least once, forcing a rung-2 checkpoint restore mid-run — and asserts
// the restored trajectory is still bit-identical to the unsharded
// reference. The (seed, prob) pair is pinned: chaos decisions are pure
// functions of them, so the schedule is stable.
func TestShardCheckpointRestoreMidRun(t *testing.T) {
	const seed = 23
	baseline := testutil.GoroutineBaseline()
	cat := determinismCatalog(3*8192, seed)
	serial := runSnapshots(t, cat, determinismSQL, determinismOptions(seed))

	o := determinismOptions(seed)
	o.Shards = 4
	o.Chaos = chaos.New(chaos.Config{Seed: 2, ShardKillProb: 0.62})
	snaps, m := runShardMetrics(t, o, seed)
	compareSnapshots(t, "restore-recovered N=4", serial, snaps)
	if m.ShardRestores == 0 {
		t.Fatal("fixture chosen to exhaust rung 1 reported ShardRestores = 0")
	}
	testutil.VerifyNoLeaks(t, baseline)
}

// TestShardLostError drives the whole ladder to exhaustion (kill
// probability 1 fires for every incarnation at every site) and asserts
// the typed shard-lost error surfaces, the engine latches it, and no
// shard goroutines leak after Close.
func TestShardLostError(t *testing.T) {
	const seed = 7
	baseline := testutil.GoroutineBaseline()
	cat := determinismCatalog(8192, seed)
	q, err := plan.Compile(determinismSQL, cat)
	if err != nil {
		t.Fatal(err)
	}
	o := determinismOptions(seed)
	o.Shards = 2
	o.Chaos = chaos.New(chaos.Config{Seed: 9, ShardKillProb: 1})
	eng, err := New(q, cat, o)
	if err != nil {
		t.Fatal(err)
	}
	_, serr := eng.Step()
	if serr == nil {
		t.Fatal("kill-everything schedule did not fail the step")
	}
	if !errors.Is(serr, ErrKindShardLost) {
		t.Fatalf("want shard-lost, got %v", serr)
	}
	var qe *QueryError
	if !errors.As(serr, &qe) || qe.Worker < 0 {
		t.Fatalf("shard-lost error must carry the shard slot, got %+v", serr)
	}
	if _, again := eng.Step(); !errors.Is(again, ErrKindShardLost) {
		t.Fatalf("engine must latch the fatal error, got %v", again)
	}
	eng.Close()
	testutil.VerifyNoLeaks(t, baseline)
}

// TestShardSnapshotProgress checks Snapshot.Shards: every slot reports
// rows and steps, and their total matches the rows processed.
func TestShardSnapshotProgress(t *testing.T) {
	const seed = 1
	o := determinismOptions(seed)
	o.Shards = 4
	snaps, m := runShardMetrics(t, o, seed)
	if m.Shards != 4 {
		t.Fatalf("Metrics.Shards = %d, want 4", m.Shards)
	}
	last := snaps[len(snaps)-1]
	if len(last.Shards) != 4 {
		t.Fatalf("Snapshot.Shards has %d slots, want 4", len(last.Shards))
	}
	var rows int64
	for i, st := range last.Shards {
		if st.ID != i {
			t.Fatalf("slot %d reports ID %d", i, st.ID)
		}
		if st.Rows == 0 || st.Steps == 0 {
			t.Fatalf("slot %d idle: %+v", i, st)
		}
		rows += st.Rows
	}
	if rows != m.RowsProcessed {
		t.Fatalf("shard rows %d != RowsProcessed %d", rows, m.RowsProcessed)
	}
}
