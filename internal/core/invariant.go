package core

import "sort"

// Deterministic-set invariant monitor. G-OLA's correctness argument
// (§3.2/§4) rests on two commitments: once a variation range is
// published, the converging estimate must stay inside it, and once a
// tuple's predicate decision is committed deterministically it must
// never flip. The engine already detects in-flight contradictions
// (range failures) and recovers by replaying the prefix with widened
// ranges — those recovered contradictions are counted as *flips*
// (Metrics.DetFlips, EvRangeFailure trace events). What nothing
// re-verified until now is the end state: every commitment that
// survived to the end of the run must agree with the exact answer. A
// committed decision that silently disagrees would mean delta
// maintenance folded (or dropped) tuples it should not have — the
// failure mode the OLA literature flags as "unvalidated error
// guarantees". AuditInvariants is that machine check: it re-walks every
// surviving commitment against the current point state and reports each
// contradiction as a Violation, a metrics count, and an EvDetViolation
// trace event. After the final mini-batch the point state is exact, so
// a clean run must produce zero violations (enforced by the audit gate
// in scripts/check.sh).

// ViolationKind names the class of committed decision that was
// contradicted.
const (
	// ViolScalarRange: an uncorrelated scalar subquery's point estimate
	// sits outside the intersection of its committed variation ranges.
	ViolScalarRange = "scalar-range"
	// ViolGroupRange: a correlated per-group estimate escaped the range
	// committed for its group key.
	ViolGroupRange = "group-range"
	// ViolSetMembership: an IN-subquery key's point membership
	// contradicts the committed deterministic membership decision.
	ViolSetMembership = "set-membership"
)

// Violation is one committed deterministic decision contradicted by the
// engine's current point state. At completion the point state is exact,
// so any violation is a statistical-correctness bug, not noise.
type Violation struct {
	Block int     `json:"block"`
	Kind  string  `json:"kind"`
	Key   string  `json:"key,omitempty"`
	Point float64 `json:"point"`
	Lo    float64 `json:"lo,omitempty"`
	Hi    float64 `json:"hi,omitempty"`
	// Member/Committed carry the membership sides of a set violation.
	Member    bool `json:"member,omitempty"`
	Committed bool `json:"committed,omitempty"`
}

// AuditInvariants re-checks every surviving committed decision against
// the engine's current point estimates and returns the contradictions
// in deterministic order (block, then key). It may be called after any
// Step — the inline failure path keeps commitments consistent
// batch-to-batch, so a non-empty result at any point indicates a bug —
// but the decisive call is after Done(), when points are exact.
// Each violation is also emitted as an EvDetViolation trace event;
// Metrics.InvariantViolations reflects the most recent audit.
func (e *Engine) AuditInvariants() []Violation {
	var out []Violation
	b := e.bind
	for idx, s := range b.scalars {
		if !s.hasCommitted {
			continue
		}
		if f, ok := s.point.AsFloat(); ok && !s.committed.Contains(f) {
			out = append(out, Violation{
				Block: blockOf(b.scalarBlocks, idx), Kind: ViolScalarRange,
				Point: f, Lo: s.committed.Lo, Hi: s.committed.Hi,
			})
		}
	}
	for idx, g := range b.groups {
		keys := sortedKeys(g.committed)
		for _, key := range keys {
			committed := g.committed[key]
			point, ok := g.point[key]
			if !ok {
				continue
			}
			if f, okf := point.AsFloat(); okf && !committed.Contains(f) {
				out = append(out, Violation{
					Block: blockOf(b.groupBlocks, idx), Kind: ViolGroupRange, Key: key,
					Point: f, Lo: committed.Lo, Hi: committed.Hi,
				})
			}
		}
	}
	for idx, s := range b.sets {
		for _, key := range sortedKeys(s.committed) {
			committed := s.committed[key]
			if member := s.point[key]; member != committed {
				out = append(out, Violation{
					Block: blockOf(b.setBlocks, idx), Kind: ViolSetMembership, Key: key,
					Member: member, Committed: committed,
				})
			}
		}
	}
	for _, v := range out {
		e.trace.Emit(Event{Kind: EvDetViolation, Block: v.Block, Key: v.Key,
			Point: v.Point, Lo: v.Lo, Hi: v.Hi, Note: v.Kind})
	}
	e.metrics.InvariantViolations = len(out)
	return out
}

// sortedKeys orders a committed-range map's keys for deterministic
// violation reports.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
