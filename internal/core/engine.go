package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"fluodb/internal/bootstrap"
	"fluodb/internal/chaos"
	"fluodb/internal/exec"
	"fluodb/internal/expr"
	"fluodb/internal/otrace"
	"fluodb/internal/plan"
	"fluodb/internal/resource"
	"fluodb/internal/storage"
	"fluodb/internal/types"
)

// Options configure a G-OLA execution.
type Options struct {
	// Batches is k, the number of uniform mini-batches (§2.1). The batch
	// granularity controls how often the user sees a refined result.
	Batches int
	// Trials is B, the number of poissonized bootstrap trials used for
	// error estimation and variation ranges (§2.2).
	Trials int
	// Confidence is the CI level (default 0.95).
	Confidence float64
	// EpsilonSigma is the variation-range slack ε expressed in replica
	// standard deviations (§3.2; the paper recommends 1.0).
	EpsilonSigma float64
	// MinGroupSupport is the minimum number of folded tuples a group of
	// a correlated or IN-subquery needs before its variation range may
	// commit deterministic decisions. Below it the group stays
	// uncertain: tiny samples make bootstrap ranges unreliable for
	// extensive aggregates, which would cause recomputation storms.
	MinGroupSupport int
	// BootstrapSampleCap bounds the number of rows (per streamed table)
	// that feed the bootstrap replica states. Error estimation is the
	// dominant online-processing overhead (§5 attributes FluoDB's ~60%
	// overhead to it); maintaining B replica aggregates over every
	// tuple would multiply work by B. Instead replicas are maintained
	// over a deterministic Bernoulli subsample of m = cap rows, and
	// replica deviations are rescaled by √(m/n) (the m-out-of-n
	// bootstrap correction) so confidence intervals and variation
	// ranges keep the dispersion of the full prefix.
	// 0 = auto (max(2000, rows/(2·Trials)), keeping replica work ≈ half
	// the main work); negative = unbounded (replicas over all rows).
	BootstrapSampleCap int
	// FullTables lists tables to read in their entirety on the first
	// mini-batch instead of streaming (§2: the user can specify that
	// only a subset of the input relations is processed online — e.g.
	// stream the big fact table while small inputs load up front).
	// Dimension tables of joins are always read fully regardless.
	FullTables []string
	// SnapshotEvalBudget caps the per-snapshot error-estimation work:
	// confidence intervals are computed from roughly
	// budget / output-groups bootstrap trials (at least 8, at most
	// Trials). Grouped results with thousands of groups would otherwise
	// pay groups×Trials expression evaluations per refresh.
	// 0 = default (50000); negative = unlimited.
	SnapshotEvalBudget int
	// Parallelism is the number of worker goroutines folding each
	// mini-batch (FluoDB is a parallel online execution framework, §1).
	// 0 = GOMAXPROCS; 1 = serial. Results are identical up to group
	// ordering; full run-to-run determinism requires a fixed value.
	Parallelism int
	// ParallelThreshold is the minimum shard size (rows) worth a worker:
	// batches below 2×threshold run serially, and the worker count is
	// clamped to rows/threshold. ≤0 resolves to the default (2048).
	// Lower it to engage more workers on small batches (the scaling
	// bench sweeps it); raise it when per-tuple work is very cheap.
	ParallelThreshold int
	// Shards routes every mini-batch through N shard engines behind the
	// coordinator (coordinator.go): the batch splits into N contiguous
	// row slices, each folded by one shard (with up to Parallelism-way
	// parallelism inside the shard) and merged back in shard order. 0 =
	// unsharded (the engine folds batches itself). The N-shard trajectory
	// is bit-identical to the unsharded run for any N; a shard death is
	// recovered by the coordinator's ladder (replacement re-dispatch,
	// then checkpoint restore), so Shards is operational like
	// Parallelism — it may differ between a checkpoint and its resume.
	Shards int
	// RowPath disables the columnar fold path (columnar.go), forcing the
	// row-oriented per-tuple loop even for eligible blocks. The two paths
	// are bit-identical by construction; this is the A/B switch the
	// benchmarks and the bit-identity tests compare against.
	RowPath bool
	// PerBatchSpawn selects the legacy parallel runtime that spawns
	// fresh goroutines and allocates fresh shard tables every mini-batch
	// instead of using the persistent worker pool. Kept as the A/B
	// baseline for the scaling benchmark; it also disables uncertain-set
	// reclassification parallelism and weight prefetch.
	PerBatchSpawn bool
	// Seed makes the run deterministic.
	Seed uint64
	// Profile enables fine-grained phase timing inside the per-tuple
	// fold loop (join, fold, weight generation, classification). Coarse
	// phases (uncertain re-evaluation, range maintenance, recompute,
	// snapshot) are always timed. The fine timers are monotonic clock
	// reads into pre-allocated per-worker accumulators — allocation-free
	// but not free, hence the gate.
	Profile bool
	// Tracer, when non-nil, receives structured G-OLA events (range
	// failures, commits, uncertain flips, recomputes). See Tracer.
	Tracer *Tracer
	// MaxUncertainRows bounds the cached uncertain set across all blocks
	// (0 = unbounded). When a batch pushes past the budget, the oldest
	// cached tuples are force-resolved by their point-estimate truth
	// (folded or dropped) instead of waiting for their ranges to decide;
	// snapshots are then marked Degraded. A later contradiction still
	// triggers the usual failure-recovery replay, so results stay
	// correct — the degradation is in deterministic-set precision, not
	// in the answer.
	MaxUncertainRows int
	// MaxMemoryBytes is a soft budget on the bytes the query pins across
	// its accounted pools (group tables, weight arenas, uncertain cache,
	// prefetch buffers, columnar scratch, segment cache; see
	// Snapshot.Resources). 0 = unbudgeted. When a mini-batch commits
	// over budget, a deterministic degradation ladder engages — drop the
	// columnar segment cache, then disable weight prefetch, then evict
	// uncertain tuples through the MaxUncertainRows path — each rung
	// falling back to a bit-identical slower/leaner mode (ledger.go).
	// Like Parallelism, the budget is operational: it may differ between
	// a checkpoint and its resume.
	MaxMemoryBytes int64
	// Chaos, when non-nil, injects deterministic faults (worker panics,
	// stragglers, shard corruption, prefetch drops) into the runtime for
	// robustness testing. Production queries leave it nil.
	Chaos *chaos.Injector
	// Spans, when non-nil, records a hierarchical execution timeline —
	// query → mini-batch → phase → per-worker shard task, plus prefetch
	// fills, serial retries, reclassification and checkpoint/resume —
	// into preallocated per-track slabs (internal/otrace, DESIGN.md
	// §14). Ring Tracer events mirror onto the timeline as instant
	// events; a Tracer is created internally when only Spans is set.
	// Span edges are batch/phase-granular: the per-tuple hot path is
	// untouched and the steady state stays allocation-free.
	Spans *otrace.Tracer
}

// Validate rejects nonsensical option values with a typed error.
// Zero values are untouched — they remain "use the default" sentinels
// (withDefaults) — but explicitly negative or impossible settings no
// longer silently snap to defaults.
func (o Options) Validate() error {
	bad := func(field string, v any) error {
		return queryErr(ErrKindInvalidOptions, fmt.Sprintf("%s = %v", field, v))
	}
	if o.Batches < 0 {
		return bad("Batches", o.Batches)
	}
	if o.Trials < 0 {
		return bad("Trials", o.Trials)
	}
	if o.Confidence < 0 || o.Confidence >= 1 {
		return bad("Confidence", o.Confidence)
	}
	if o.EpsilonSigma < 0 {
		return bad("EpsilonSigma", o.EpsilonSigma)
	}
	if o.MinGroupSupport < 0 {
		return bad("MinGroupSupport", o.MinGroupSupport)
	}
	if o.Parallelism < 0 {
		return bad("Parallelism", o.Parallelism)
	}
	if o.ParallelThreshold < 0 {
		return bad("ParallelThreshold", o.ParallelThreshold)
	}
	if o.Shards < 0 {
		return bad("Shards", o.Shards)
	}
	if o.MaxUncertainRows < 0 {
		return bad("MaxUncertainRows", o.MaxUncertainRows)
	}
	if o.MaxMemoryBytes < 0 {
		return bad("MaxMemoryBytes", o.MaxMemoryBytes)
	}
	return nil
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Batches <= 0 {
		o.Batches = 10
	}
	if o.Trials <= 0 {
		o.Trials = 100
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		o.Confidence = 0.95
	}
	if o.EpsilonSigma <= 0 {
		o.EpsilonSigma = 1.0
	}
	if o.MinGroupSupport <= 0 {
		o.MinGroupSupport = 2
	}
	if o.SnapshotEvalBudget == 0 {
		o.SnapshotEvalBudget = 50000
	}
	if o.Parallelism <= 0 {
		o.Parallelism = defaultParallelism()
	}
	if o.ParallelThreshold <= 0 {
		o.ParallelThreshold = 2048
	}
	if o.Seed == 0 {
		o.Seed = 0x60A11DB
	}
	return o
}

// Metrics aggregates execution statistics.
type Metrics struct {
	Batches            int
	Recomputes         int
	RowsProcessed      int64
	DeterministicFolds int64
	UncertainPerBatch  []int
	BatchDurations     []time.Duration
	// DetFlips counts in-flight contradictions of previously committed
	// deterministic decisions (each one triggers a recovery replay);
	// InvariantViolations counts contradictions still standing when
	// AuditInvariants last ran — nonzero means the estimator committed a
	// decision it never corrected (a statistical-correctness bug).
	DetFlips            int
	InvariantViolations int
	// UncertainEvictions counts cached uncertain tuples force-resolved
	// by the MaxUncertainRows cap or the MaxMemoryBytes budget; nonzero
	// marks snapshots Degraded. BudgetEvictions is the subset forced by
	// the memory budget (ladder rung 3); the cap-driven share is the
	// difference (the reason split behind
	// gola_uncertain_evictions{reason}).
	UncertainEvictions int64
	BudgetEvictions    int64
	// Resource-ledger headline numbers (ledger.go): latest / high-water
	// total byte residency across the accounted pools, the highest
	// degradation rung engaged by MaxMemoryBytes (0 = none), and GC
	// pause time / cycles attributed to this query's mini-batches.
	MemBytes     int64
	MemPeakBytes int64
	DegradeRung  int
	GCPauseNS    int64
	GCCycles     int64
	// Sharded-execution counters (coordinator.go): Shards is the
	// configured topology width (0 = unsharded); ShardKills counts slices
	// whose shard died or failed mid-fold; ShardRespawns counts
	// replacement incarnations spawned by recovery rung 1; ShardRestores
	// counts rung-2 checkpoint restores (whole-topology respawn + roll
	// back to the last committed batch).
	Shards        int
	ShardKills    int64
	ShardRespawns int64
	ShardRestores int64
	// Phases is the cumulative per-phase time breakdown across the run;
	// PhasePerBatch holds one breakdown per processed batch (aligned
	// with BatchDurations). Fine phases require Options.Profile.
	Phases        PhaseTimes
	PhasePerBatch []PhaseTimes
	// BlockPhases profiles each lineage block's cumulative cost
	// (dependency order, root last).
	BlockPhases []BlockPhaseStat
}

// tableStream is one streamed fact table partitioned into mini-batches.
type tableStream struct {
	name       string
	batches    [][]types.Row
	starts     []int // global row index of each batch's first row
	seen       int
	total      int
	weightBase uint64
	sampleBase uint64
	// Bootstrap subsampling (see Options.BootstrapSampleCap).
	sampleP   float64
	invP      float64
	sampleCut uint64
	sqrtP     float64
}

// Engine drives G-OLA execution of one query.
type Engine struct {
	q       *plan.Query
	cat     *storage.Catalog
	opt     Options
	bind    *bindings
	runners []*blockRunner
	tables  map[string]*tableStream
	batch   int
	metrics Metrics
	// Memoized per-node expression facts (plans are immutable).
	hpCache  map[expr.Expr]bool
	colCache map[expr.Expr]bool
	// Profiling state: profile gates fine per-tuple phase timing;
	// stepAcc accrues engine-level phases (recompute) for the batch in
	// flight; blockAcc[i] is runner i's cumulative profile; cumAcc the
	// run-wide total. See profile.go.
	profile  bool
	trace    *Tracer
	stepAcc  phaseAcc
	blockAcc []phaseAcc
	cumAcc   phaseAcc
	// Persistent parallel runtime (see pool.go / pipeline.go): pool is
	// the lazily created worker pool, prefetch the per-table
	// double-buffered bootstrap-weight pipeline, closed the Close latch.
	pool     *workerPool
	closed   bool
	prefetch map[string]*weightPrefetch
	// Sharded execution (coordinator.go / shard.go): coord owns the
	// shard topology when Options.Shards > 0; shardCkpt is the rolling
	// checkpoint of the last committed batch that recovery rung 2
	// restores from.
	coord     *shardCoordinator
	shardCkpt []byte
	// Fault surfaces: fatal latches a QueryError that exhausted
	// containment (the engine refuses further Steps); lastSnap is the
	// most recent committed snapshot, returned as the bounded-time
	// answer on deadline/cancel.
	fatal    error
	lastSnap *Snapshot
	// Span timeline state (spans.go): sctl is the controller-track
	// slab; the spanQuery/spanTop/spanBatch/spanFeed/spanReclass fields
	// carry the currently open ancestry so deeper layers (worker tasks,
	// prefetch fills, retries) parent their spans without plumbing IDs
	// through every signature. spanBatchNo is the 1-based batch stamped
	// onto worker spans.
	spans       *otrace.Tracer
	sctl        *otrace.Slab
	spanQuery   otrace.SpanID
	spanTop     otrace.SpanID
	spanBatch   otrace.SpanID
	spanFeed    otrace.SpanID
	spanReclass otrace.SpanID
	spanBatchNo int
	// Convergence observatory state (converge.go): bounded per-batch
	// series of CI half-width quantiles, churn and throughput, plus the
	// 1/√n fit backing Snapshot.ETA.
	conv convergeState
	// Resource ledger state (ledger.go): per-pool byte residency with
	// peaks, the runtime/metrics GC sampler and its previous reading
	// (for per-batch attribution), the latched degradation rung of the
	// MaxMemoryBytes ladder with its cached reason string (rebuilt only
	// on state change, so snapshots assign it allocation-free), the
	// latest stamped usage, and the most recent checkpoint buffer size.
	ledger        resource.Ledger
	gcSampler     *resource.Sampler
	gcPrev        resource.GCStats
	degradeRung   int
	degradeReason string
	lastUsage     ResourceUsage
	ckBytes       int64
}

// triEnv builds the classification environment with memoized
// expression walks.
func (e *Engine) triEnv() *triEnv {
	te := e.bind.triEnv()
	// The caches are fully populated at construction (warmExprCaches)
	// and read-only afterwards, so worker goroutines may share them.
	te.hp = func(x expr.Expr) bool {
		if v, ok := e.hpCache[x]; ok {
			return v
		}
		return expr.HasParams(x)
	}
	te.hc = func(x expr.Expr) bool {
		if v, ok := e.colCache[x]; ok {
			return v
		}
		return hasCols(x)
	}
	return te
}

// warmExprCaches precomputes the per-node expression facts for every
// expression the engine will evaluate, so the memo maps are read-only
// during (possibly parallel) execution.
func (e *Engine) warmExprCaches() {
	add := func(x expr.Expr) {
		if x == nil {
			return
		}
		expr.Walk(x, func(n expr.Expr) bool {
			e.hpCache[n] = expr.HasParams(n)
			e.colCache[n] = hasCols(n)
			return true
		})
	}
	for _, r := range e.runners {
		b := r.b
		add(r.certainWhere)
		add(r.uncertainWhere)
		add(b.Where)
		add(b.Having)
		for _, x := range b.Select {
			add(x)
		}
		for _, g := range b.GroupBy {
			add(g)
		}
		for i := range b.Aggs {
			add(b.Aggs[i].Arg)
		}
		for _, d := range b.Dims {
			add(d.LeftKey)
			add(d.RightKey)
		}
	}
}

// ErrDone is returned by Step after the last mini-batch.
var ErrDone = errors.New("core: all mini-batches processed")

// New builds an engine for a compiled query.
func New(q *plan.Query, cat *storage.Catalog, opt Options) (*Engine, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	if !q.Root.Aggregating {
		return nil, fmt.Errorf("core: online execution requires an aggregate query " +
			"(projection-only queries have no converging result to refine)")
	}
	e := &Engine{q: q, cat: cat, opt: opt, tables: map[string]*tableStream{},
		hpCache: map[expr.Expr]bool{}, colCache: map[expr.Expr]bool{},
		prefetch: map[string]*weightPrefetch{}}
	e.bind = newBindings(len(q.ScalarBlocks), len(q.GroupBlocks), len(q.SetBlocks), opt.Trials)
	for _, b := range q.Blocks {
		if _, ok := e.tables[b.Input.Fact]; ok {
			continue
		}
		t, ok := cat.Get(b.Input.Fact)
		if !ok {
			return nil, fmt.Errorf("core: unknown table %q", b.Input.Fact)
		}
		batches := t.MiniBatches(opt.Batches)
		for _, full := range opt.FullTables {
			if strings.EqualFold(full, b.Input.Fact) {
				// Whole table arrives in the first mini-batch; later
				// batches are empty and the stream completes early.
				batches = make([][]types.Row, opt.Batches)
				batches[0] = t.Rows()
				break
			}
		}
		ts := &tableStream{
			name:       b.Input.Fact,
			batches:    batches,
			total:      t.NumRows(),
			weightBase: bootstrap.Mix64(opt.Seed ^ hashString(b.Input.Fact)),
			sampleBase: bootstrap.Mix64(opt.Seed ^ hashString(b.Input.Fact) ^ 0x5A3B1E),
		}
		pos := 0
		for _, batch := range ts.batches {
			ts.starts = append(ts.starts, pos)
			pos += len(batch)
		}
		capRows := opt.BootstrapSampleCap
		if capRows == 0 {
			capRows = ts.total / (2 * opt.Trials)
			if capRows < 2000 {
				capRows = 2000
			}
		}
		if capRows < 0 || capRows >= ts.total || ts.total == 0 {
			ts.sampleP = 1
		} else {
			ts.sampleP = float64(capRows) / float64(ts.total)
		}
		ts.invP = 1 / ts.sampleP
		ts.sqrtP = math.Sqrt(ts.sampleP)
		if ts.sampleP >= 1 {
			ts.sampleCut = ^uint64(0)
		} else {
			ts.sampleCut = uint64(ts.sampleP * float64(^uint64(0)))
		}
		e.tables[b.Input.Fact] = ts
	}
	for _, b := range q.Blocks {
		r, err := newBlockRunner(b, e)
		if err != nil {
			return nil, err
		}
		r.idx = len(e.runners)
		e.runners = append(e.runners, r)
	}
	e.warmExprCaches()
	// Build columnar plans at construction time: eligibility is static,
	// and an eligible block's first batch should not be charged for
	// encoding the whole table (the storage layer caches the encoding
	// across engines anyway).
	for _, r := range e.runners {
		r.ensureColPlan()
	}
	e.profile = opt.Profile
	tr := opt.Tracer
	if tr == nil && opt.Spans != nil {
		// Instants (faults, flips, retries) should land on the span
		// timeline even when the caller only asked for spans.
		tr = NewTracer(0)
	}
	e.trace = tr
	e.spans = opt.Spans
	e.sctl = e.spans.Slab(0)
	if e.spans != nil {
		e.trace.setMirror(e.spanInstant)
	}
	e.blockAcc = make([]phaseAcc, len(e.runners))
	// GC telemetry: one sampler per engine (no goroutine — reads happen
	// synchronously at mini-batch boundaries), baselined now so the
	// first batch's deltas exclude construction-time allocation.
	e.gcSampler = resource.NewSampler()
	e.gcPrev = e.gcSampler.Read()
	// Let bindings stamp trace events with the plan block that owns each
	// parameter (the bindings only know parameter indexes).
	e.bind.tracer = tr
	e.bind.scalarBlocks = make([]int, len(q.ScalarBlocks))
	e.bind.groupBlocks = make([]int, len(q.GroupBlocks))
	e.bind.setBlocks = make([]int, len(q.SetBlocks))
	for _, r := range e.runners {
		switch r.b.Kind {
		case plan.ScalarBlock:
			e.bind.scalarBlocks[r.b.ParamIdx] = r.b.ID
		case plan.GroupScalarBlock:
			e.bind.groupBlocks[r.b.ParamIdx] = r.b.ID
		case plan.SetBlock:
			e.bind.setBlocks[r.b.ParamIdx] = r.b.ID
		}
	}
	if opt.Shards > 0 {
		e.coord = newShardCoordinator(e, opt.Shards)
		e.metrics.Shards = opt.Shards
	}
	return e, nil
}

func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Done reports whether every mini-batch has been processed.
func (e *Engine) Done() bool { return e.batch >= e.opt.Batches }

// Batch returns the number of mini-batches processed so far.
func (e *Engine) Batch() int { return e.batch }

// Metrics returns the accumulated execution statistics, including the
// per-block per-phase profile (rebuilt fresh on each call).
func (e *Engine) Metrics() Metrics {
	m := e.metrics
	m.DetFlips = e.bind.flips
	m.Phases = e.cumAcc.times()
	m.BlockPhases = make([]BlockPhaseStat, len(e.runners))
	for i, r := range e.runners {
		m.BlockPhases[i] = BlockPhaseStat{
			Block:     r.b.ID,
			Kind:      r.b.Kind.String(),
			Label:     r.b.Label,
			Table:     r.b.Input.Fact,
			Groups:    len(r.tab.order),
			Uncertain: len(r.uncertain),
			Columnar:  r.colPl.verdict(),
			Phases:    e.blockAcc[i].times(),
		}
	}
	return m
}

// Options returns the effective (defaulted) options.
func (e *Engine) Options() Options { return e.opt }

// weightsInto derives the per-trial Poisson(1) multiplicities of a
// tuple, filling buf in place (buf is reallocated only when too small;
// pass the returned slice back in to stay allocation-free). The
// derivation is a pure function of (seed, table, row index, trial), so
// failure-recovery replay regenerates identical resamples.
func (e *Engine) weightsInto(buf []uint8, ts *tableStream, rowIdx int) []uint8 {
	if cap(buf) < e.opt.Trials {
		buf = make([]uint8, e.opt.Trials)
	}
	buf = buf[:e.opt.Trials]
	base := ts.weightBase + uint64(rowIdx)*uint64(e.opt.Trials)
	for j := range buf {
		p := bootstrap.PoissonAt(base + uint64(j))
		if p > 255 {
			p = 255
		}
		buf[j] = uint8(p)
	}
	return buf
}

// weightsFor is weightsInto with a fresh buffer.
func (e *Engine) weightsFor(ts *tableStream, rowIdx int) []uint8 {
	return e.weightsInto(nil, ts, rowIdx)
}

// sampled reports whether a tuple is in the bootstrap subsample
// (deterministic in the seed, so replay regenerates it).
func (e *Engine) sampled(ts *tableStream, rowIdx int) bool {
	if ts.sampleP >= 1 {
		return true
	}
	return bootstrap.Mix64(ts.sampleBase+uint64(rowIdx)) <= ts.sampleCut
}

// adjustRep applies the m-out-of-n bootstrap correction: replicas are
// computed over a subsample of fraction p, so their dispersion around
// the point estimate is √(1/p) too large; shrink deviations by √p.
func adjustRep(point, rep types.Value, sqrtP float64) types.Value {
	if sqrtP >= 1 {
		return rep
	}
	p, ok1 := point.AsFloat()
	r, ok2 := rep.AsFloat()
	if !ok1 || !ok2 {
		return rep
	}
	return types.NewFloat(p + (r-p)*sqrtP)
}

// scaleFor is the multiset multiplicity m = k/i of §2.2 for a block's
// fact table: total rows over rows seen.
func (e *Engine) scaleFor(b *plan.Block) float64 {
	ts := e.tables[b.Input.Fact]
	if ts.seen == 0 || ts.total == 0 {
		return 1
	}
	return float64(ts.total) / float64(ts.seen)
}

// Step processes the next mini-batch and returns a refined snapshot.
func (e *Engine) Step() (*Snapshot, error) {
	return e.StepContext(context.Background())
}

// StepContext is Step with deadline/cancellation support, honored at
// mini-batch boundaries (BlinkDB-style bounded response time): when ctx
// expires the engine stops mid-prefix and returns the last committed
// snapshot — marked Interrupted, with its CI intact — alongside a typed
// ErrKindInterrupted error. The engine itself is not poisoned: a later
// StepContext with a live context resumes where the prefix stopped.
func (e *Engine) StepContext(ctx context.Context) (*Snapshot, error) {
	if e.fatal != nil {
		return nil, e.fatal
	}
	if e.Done() {
		return nil, ErrDone
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			e.trace.Emit(Event{Kind: EvInterrupt, Note: err.Error()})
			return e.boundedSnapshot(err), &QueryError{Kind: ErrKindInterrupted,
				Batch: e.batch, Worker: -1, Err: err,
				Note: "stopped at mini-batch boundary; snapshot is the bounded-time answer"}
		}
	}
	if e.spans != nil && e.spanQuery == 0 {
		e.spanQuery = e.sctl.Begin("query", 0, -1, -1)
		e.spanTop = e.spanQuery
	}
	if e.batch == 0 {
		// Columnar plans are built at construction, before the tracer is
		// attached; surface each block's eligibility verdict on the first
		// step so -trace users see why a block did or didn't vectorize.
		for _, r := range e.runners {
			e.trace.Emit(Event{Kind: EvColPlan, Block: r.b.ID,
				Key: r.b.Input.Fact, Note: r.colPl.verdict()})
		}
	}
	start := time.Now()
	// Shard recovery loop (rungs 2–3 of the coordinator's ladder;
	// coordinator.go). Unsharded engines take exactly one iteration: the
	// only error that re-enters the loop is a *shardDown, which only the
	// coordinator produces. After a bounded number of checkpoint restores
	// the shard is declared lost.
	restores := 0
	for perr := e.stepOnce(); perr != nil; {
		var sd *shardDown
		if !errors.As(perr, &sd) {
			e.fatal = perr
			return nil, perr
		}
		if restores >= maxShardRestores {
			qe := &QueryError{Kind: ErrKindShardLost, Batch: e.batch,
				Worker: sd.shard, Err: sd.cause,
				Note: fmt.Sprintf("recovery ladder exhausted after %d checkpoint restores", restores)}
			e.fatal = qe
			return nil, qe
		}
		restores++
		if rerr := e.shardRestore(sd, restores); rerr != nil {
			perr = rerr // classify the restore failure on the next pass
			continue
		}
		perr = e.stepOnce()
	}
	e.batch++
	e.metrics.Batches = e.batch
	dur := time.Since(start)
	e.metrics.BatchDurations = append(e.metrics.BatchDurations, dur)
	e.metrics.UncertainPerBatch = append(e.metrics.UncertainPerBatch, e.UncertainRows())
	if e.coord != nil {
		// Roll the recovery checkpoint forward to the state just
		// committed, so a later shard loss redoes at most one batch.
		if ck, cerr := e.Checkpoint(); cerr == nil {
			e.shardCkpt = ck
		}
	}

	// Flush this batch's phase accumulators: per-runner scratch into the
	// cumulative per-block profiles and the batch total. Replay work is
	// included — its inner phases re-accrued during processBatch calls,
	// its wall time sits in stepAcc's recompute slot.
	var bp phaseAcc
	for i := range e.runners {
		acc := &e.runners[i].acc
		e.blockAcc[i].merge(acc)
		bp.merge(acc)
		acc.reset()
	}
	bp.merge(&e.stepAcc)
	e.stepAcc.reset()

	ss := time.Now()
	ssp := e.sctl.Begin("snapshot", e.spanQuery, e.batch, -1)
	snap := e.snapshot(dur)
	e.sctl.End(ssp)
	bp.ns[phaseSnapshot] += int64(time.Since(ss))
	e.cumAcc.merge(&bp)
	e.metrics.PhasePerBatch = append(e.metrics.PhasePerBatch, bp.times())
	snap.Phases = bp.times()
	e.observeConvergence(snap, dur)
	e.observeResources(snap)
	if e.Done() {
		e.sctl.End(e.spanQuery)
		// Clear the handles: spans begun after completion (a final
		// Checkpoint, say) must become roots, not children of a span
		// that already ended.
		e.spanQuery, e.spanTop = 0, 0
	}
	e.lastSnap = snap
	return snap, nil
}

// stepOnce runs the current mini-batch once: feed every block, and on a
// variation-range failure recompute over all data seen so far with
// re-widened ranges (§3.2) — the controller replays the processed
// prefix; per-tuple resamples are regenerated deterministically so the
// statistics are unchanged. Extracted from StepContext so the shard
// recovery loop can redo the whole batch after a checkpoint restore.
func (e *Engine) stepOnce() error {
	ok, perr := e.processBatch(e.batch)
	if perr != nil {
		return perr
	}
	if !ok {
		e.metrics.Recomputes++
		e.trace.Emit(Event{Kind: EvRecompute, Note: "variation-range failure; replaying processed prefix"})
		rs := time.Now()
		rsp := e.sctl.Begin("recompute", e.spanQuery, e.batch+1, -1)
		oldTop := e.spanTop
		e.spanTop = rsp
		rerr := e.replayUpTo(e.batch)
		e.spanTop = oldTop
		e.sctl.End(rsp)
		e.stepAcc.ns[phaseRecompute] += int64(time.Since(rs))
		if rerr != nil {
			return rerr
		}
	}
	return nil
}

// shardRestore is recovery rung 2: the whole shard topology respawns
// under a fresh incarnation epoch and the engine's online state rolls
// back to the last committed mini-batch — from the rolling checkpoint
// when one exists, else by deterministic replay of the committed prefix
// (which before the first commit collapses to a clean reset). The
// caller then redoes the current batch; because every statistic is a
// counter-based function of committed state, the redone trajectory is
// identical to an undisturbed run (DESIGN.md §17).
func (e *Engine) shardRestore(sd *shardDown, attempt int) error {
	e.metrics.ShardRestores++
	e.trace.Emit(Event{Kind: EvShardRestore, Worker: sd.shard, Kept: attempt,
		Note: fmt.Sprintf("restoring committed batch %d after: %v", e.batch, sd.cause)})
	e.coord.respawnAll()
	e.invalidatePrefetch()
	if e.shardCkpt == nil {
		// replayUpTo resets all online state before reprocessing, so this
		// is the no-checkpoint fallback and the batch-0 clean reset both.
		return e.replayUpTo(e.batch - 1)
	}
	// restore expects construction-fresh state (it only overwrites).
	e.bind.reset()
	for _, r := range e.runners {
		r.reset()
	}
	for _, ts := range e.tables {
		ts.seen = 0
	}
	return e.restore(e.shardCkpt)
}

// boundedSnapshot materializes the bounded-time answer for an
// interrupted query: a copy of the last committed snapshot (or a fresh
// empty one when no batch has completed), marked Interrupted.
func (e *Engine) boundedSnapshot(cause error) *Snapshot {
	var snap Snapshot
	if e.lastSnap != nil {
		snap = *e.lastSnap
	} else {
		snap = *e.snapshot(0)
	}
	snap.Interrupted = true
	snap.InterruptReason = cause.Error()
	return &snap
}

// Run executes all remaining batches, invoking fn (if non-nil) per
// snapshot; fn returning false stops early (the user is satisfied with
// the accuracy — the OLA control knob).
func (e *Engine) Run(fn func(*Snapshot) bool) (*Snapshot, error) {
	var last *Snapshot
	for !e.Done() {
		s, err := e.Step()
		if err != nil {
			return last, err
		}
		last = s
		if fn != nil && !fn(s) {
			break
		}
	}
	return last, nil
}

// RunContext is Run under a deadline: when ctx expires mid-prefix the
// partial answer is returned with a nil error — interruption is a
// bounded-time result (check Snapshot.Interrupted), not a failure.
// Other errors (fatal containment exhaustion, invalid state) pass
// through.
func (e *Engine) RunContext(ctx context.Context, fn func(*Snapshot) bool) (*Snapshot, error) {
	var last *Snapshot
	for !e.Done() {
		s, err := e.StepContext(ctx)
		if err != nil {
			if IsInterrupted(err) {
				if s != nil {
					return s, nil
				}
				return last, nil
			}
			return last, err
		}
		last = s
		if fn != nil && !fn(s) {
			break
		}
	}
	return last, nil
}

// UncertainRows is the total number of cached uncertain tuples across
// all blocks.
func (e *Engine) UncertainRows() int {
	n := 0
	for _, r := range e.runners {
		n += len(r.uncertain)
	}
	return n
}

// processBatch feeds mini-batch bi through every block in dependency
// order. It returns ok=false if a committed variation range failed; a
// non-nil error means a fault exhausted its containment (worker panic
// surviving every serial retry) and the batch did not complete.
func (e *Engine) processBatch(bi int) (bool, error) {
	e.trace.setBatch(bi + 1)
	bsp := e.sctl.Begin("batch", e.spanTop, bi+1, -1)
	e.spanBatch, e.spanBatchNo = bsp, bi+1
	defer func() {
		e.sctl.End(bsp)
		e.spanBatch, e.spanBatchNo = 0, 0
	}()
	// Advance per-table progress first so estimates computed this batch
	// use the correct multiplicity.
	for _, ts := range e.tables {
		if bi < len(ts.batches) {
			ts.seen = ts.starts[bi] + len(ts.batches[bi])
		}
	}
	for _, r := range e.runners {
		te := e.triEnv()
		t0 := time.Now()
		rsp := e.sctl.Begin("reclassify", bsp, bi+1, r.b.ID)
		e.spanReclass = rsp
		folded, dropped := r.reclassify(te)
		e.sctl.End(rsp)
		e.spanReclass = 0
		r.acc.ns[phaseUncertain] += int64(time.Since(t0))
		e.conv.stepOut += int64(folded + dropped)
		if e.trace != nil && (folded != 0 || dropped != 0) {
			e.trace.Emit(Event{Kind: EvFlip, Block: r.b.ID,
				Folded: folded, Dropped: dropped, Kept: len(r.uncertain)})
		}
		ts := e.tables[r.b.Input.Fact]
		if bi < len(ts.batches) {
			if r.colPl != nil && r.colPl.ok && r.colPl.ct != nil &&
				e.opt.Chaos.SegSealDrop(r.b.Input.Fact, bi) {
				// Injected fault on the segment-seal seam: release the
				// sealed segments mid-query. revalidateColPlan re-acquires
				// the encoding (an incremental re-encode) before the feed,
				// so the fold stays columnar and bit-identical.
				if tbl, ok := e.cat.Get(r.b.Input.Fact); ok {
					tbl.DropColumnar()
				}
				r.colPl.ct = nil
				e.traceFault("segseal", r.b.Input.Fact, -1,
					"columnar segment cache dropped")
			}
			rows := ts.batches[bi]
			if r.b == e.q.Root {
				e.metrics.RowsProcessed += int64(len(rows))
			}
			fsp := e.sctl.Begin("feed", bsp, bi+1, r.b.ID)
			e.spanFeed = fsp
			var err error
			if e.coord != nil && !e.closed {
				err = e.coord.feedBatch(r, rows, ts.starts[bi], ts, e.prefetched(ts, bi))
			} else {
				err = r.feedBatchParallel(rows, ts.starts[bi], ts, te, e.prefetched(ts, bi))
			}
			e.sctl.End(fsp)
			e.spanFeed = 0
			if err != nil {
				return false, err
			}
		}
		if r.b.Kind != plan.RootBlock {
			t1 := time.Now()
			gsp := e.sctl.Begin("ranges", bsp, bi+1, r.b.ID)
			failed := e.updateBinding(r)
			e.sctl.End(gsp)
			r.acc.ns[phaseRanges] += int64(time.Since(t1))
			if failed {
				return false, nil
			}
		}
	}
	// Enforce the uncertain-cache cap and the soft memory budget before
	// the batch commits: both evaluation points are deterministic (same
	// state → same evictions / same ladder rungs), so failure-recovery
	// replay re-degrades identically — and every ladder rung falls back
	// to a bit-identical path anyway (ledger.go).
	e.enforceUncertainBudget()
	e.enforceMemoryBudget()
	// Pipeline the next batch's bootstrap weights onto the workers while
	// the controller runs this batch's snapshot tail.
	e.launchPrefetch(bi + 1)
	return true, nil
}

// enforceUncertainBudget applies Options.MaxUncertainRows: while the
// cached uncertain set exceeds the budget, the oldest tuples of the
// largest block cache are force-resolved by point-estimate truth
// (graceful degradation — bounded memory at the cost of deterministic-
// set precision, surfaced via Metrics.UncertainEvictions and
// Snapshot.Degraded).
func (e *Engine) enforceUncertainBudget() {
	budget := e.opt.MaxUncertainRows
	if budget <= 0 {
		return
	}
	if over := e.UncertainRows() - budget; over > 0 {
		e.evictUncertain(over, "cap")
	}
}

// maxReplayShardRespawns bounds how many shard deaths one replay will
// absorb before giving up (each respawn restarts the replay attempt
// from reset state under fresh incarnations, so under probabilistic
// fault injection each retry draws new variates).
const maxReplayShardRespawns = 8

// replayUpTo resets all online state and reprocesses batches 0..upto.
// Epsilon boosts persist across attempts, guaranteeing termination. A
// non-nil error means a containment-exhausting fault aborted the
// replay. In sharded mode a shard lost mid-replay (its re-dispatch
// budget exhausted) does not abort: the topology respawns and the
// replay attempt restarts — replay is itself the recovery ladder's
// restore primitive, so it must absorb shard deaths rather than bounce
// them back (this is what keeps Resume-from-checkpoint recoverable
// under kill chaos, not just Step).
func (e *Engine) replayUpTo(upto int) error {
	shardRespawns := 0
	for attempt := 0; attempt < 16; attempt++ {
	retry:
		// Weight prefetch may hold (or still be filling) a buffer for a
		// batch the replay restarts behind; drain and discard it so the
		// replayed prefix re-pipelines from batch 0.
		e.invalidatePrefetch()
		if attempt == 15 {
			// Guaranteed termination: repeated failures mean the
			// variation ranges cannot be trusted for this workload;
			// disable deterministic classification (everything stays
			// uncertain, results stay correct via snapshot-time
			// evaluation).
			e.bind.noCommit = true
			e.trace.Emit(Event{Kind: EvNoCommit,
				Note: "replay attempts exhausted; deterministic classification disabled"})
		}
		e.bind.reset()
		for _, r := range e.runners {
			r.reset()
		}
		for _, ts := range e.tables {
			ts.seen = 0
		}
		ok := true
		for bi := 0; bi <= upto; bi++ {
			bok, err := e.processBatch(bi)
			if err != nil {
				var sd *shardDown
				if errors.As(err, &sd) && shardRespawns < maxReplayShardRespawns {
					shardRespawns++
					e.metrics.ShardRestores++
					e.trace.Emit(Event{Kind: EvShardRestore, Worker: sd.shard, Kept: shardRespawns,
						Note: fmt.Sprintf("shard lost during replay; topology respawned: %v", sd.cause)})
					e.coord.respawnAll()
					goto retry // does not consume a range-failure attempt
				}
				return err
			}
			if !bok {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		e.metrics.Recomputes++
		e.trace.Emit(Event{Kind: EvRecompute, Note: "replay failed; ranges re-widened"})
	}
	return nil
}

// updateBinding recomputes a parameter block's estimate, replicas and
// variation ranges after it consumed a batch; it reports range failure.
func (e *Engine) updateBinding(r *blockRunner) bool {
	scale := e.scaleFor(r.b)
	complete := e.tables[r.b.Input.Fact].seen >= e.tables[r.b.Input.Fact].total
	switch r.b.Kind {
	case plan.ScalarBlock:
		return e.updateScalarBinding(r, scale, complete)
	case plan.GroupScalarBlock:
		e.bind.groups[r.b.ParamIdx].complete = complete
		return e.updateGroupBinding(r, scale, complete)
	case plan.SetBlock:
		e.bind.sets[r.b.ParamIdx].complete = complete
		return e.updateSetBinding(r, scale, complete)
	default:
		return false
	}
}

// pointOnlyRange collapses an exact value into its degenerate range.
func pointOnlyRange(point types.Value) paramRange {
	if f, ok := point.AsFloat(); ok {
		return okRange(bootstrap.Point(f))
	}
	return paramRange{status: rsNull}
}

// paramRangeFor derives a parameter block's variation range for one
// group: CLT slot ranges propagated through the select expression by
// interval arithmetic where possible, bootstrap replicas otherwise.
// te must have been built by e.triEnv(); its rowRanges are clobbered.
func (e *Engine) paramRangeFor(te *triEnv, r *blockRunner, en *onlineEntry, post types.Row, point types.Value, repsFn func() []types.Value, scale float64, boost float64, scratch []paramRange) (paramRange, []paramRange) {
	ts := e.tables[r.b.Input.Fact]
	f := 0.0
	if ts.total > 0 {
		f = float64(ts.seen) / float64(ts.total)
	}
	z := (cltZBase + e.opt.EpsilonSigma) * boost
	if en != nil && en.clt != nil {
		scratch = e.cltRowRanges(r, en, post, scale, f, z, scratch)
		te.rowRanges = scratch
		pr := te.evalRange(r.b.Select[0], post)
		te.rowRanges = nil
		if pr.status == rsOK || pr.status == rsNull {
			return pr, scratch
		}
	}
	return buildRange(point, repsFn(), e.opt.EpsilonSigma*boost), scratch
}

func (e *Engine) updateScalarBinding(r *blockRunner, scale float64, complete bool) bool {
	b := r.b
	mainO := r.overlayFor(-1)
	entry := soleEntry(b, mainO)
	pctx := e.bind.pointCtx(nil)
	post := exec.PostRow(b, entry, scale)
	pctx.Row = post
	point := b.Select[0].Eval(pctx)

	sqrtP := e.tables[b.Input.Fact].sqrtP
	reps := make([]types.Value, e.opt.Trials)
	for j := 0; j < e.opt.Trials; j++ {
		o := r.overlayFor(j)
		en := soleEntry(b, o)
		tctx := e.bind.trialCtx(nil, j)
		tctx.Row = exec.PostRow(b, en, scale)
		reps[j] = adjustRep(point, b.Select[0].Eval(tctx), sqrtP)
	}
	var rng paramRange
	if complete {
		rng = pointOnlyRange(point)
	} else {
		// The global group's base entry holds the CLT moments; the
		// overlay may have folded uncertain rows, whose exclusion from
		// the moments only widens the range (conservative).
		var baseEn *onlineEntry
		if len(r.tab.order) > 0 {
			baseEn = r.tab.m[r.tab.order[0]]
		}
		te := e.triEnv()
		boost := e.bind.scalars[b.ParamIdx].epsBoost
		rng, _ = e.paramRangeFor(te, r, baseEn, post, point,
			func() []types.Value { return reps }, scale, boost, nil)
	}
	return e.bind.updateScalar(b.ParamIdx, point, reps, rng)
}

// soleEntry fetches the single global-group entry of a scalar block
// (creating an empty one when no rows qualified yet).
func soleEntry(b *plan.Block, o *overlay) *exec.GroupEntry {
	keys := o.keys()
	if len(keys) == 0 {
		return &exec.GroupEntry{States: newEntryStates(b)}
	}
	return o.entry(keys[0])
}

func (e *Engine) updateGroupBinding(r *blockRunner, scale float64, complete bool) bool {
	b := r.b
	mainO := r.overlayFor(-1)
	pctx := e.bind.pointCtx(nil)
	sqrtP := e.tables[b.Input.Fact].sqrtP
	g := e.bind.groups[b.ParamIdx]
	boost := g.epsBoost
	// Replica vectors are provided lazily: only the groups probed by
	// snapshot error estimation (or by a bootstrap range fallback) pay
	// for per-trial evaluation.
	g.reps = map[string][]types.Value{}
	g.repFn = e.makeGroupRepFn(r, scale, sqrtP)
	te := e.triEnv()
	var postBuf types.Row
	var rngScratch []paramRange
	failed := false
	for _, key := range mainO.keys() {
		en := mainO.entry(key)
		if en == nil {
			continue
		}
		postBuf = exec.PostRowInto(b, en, scale, postBuf)
		post := postBuf
		pctx.Row = post
		point := b.Select[0].Eval(pctx)
		commit := e.groupSupport(r, key) >= e.opt.MinGroupSupport &&
			(r.allCLT || e.groupSampledSupport(r, key) >= e.opt.MinGroupSupport)
		var rng paramRange
		switch {
		case complete:
			rng = pointOnlyRange(point)
			commit = true // an exact value always classifies
		case commit:
			key := key
			repsFn := func() []types.Value { return g.repsFor(key) }
			rng, rngScratch = e.paramRangeFor(te, r, r.tab.m[key], post, point, repsFn, scale, boost, rngScratch)
		}
		if e.bind.updateGroupEntry(b.ParamIdx, key, point, rng, commit || complete) {
			failed = true
		}
	}
	if failed {
		// One widening per failing batch scan: per-key doubling would
		// overshoot the slack exponentially when many marginal groups
		// fail together.
		e.bind.groups[b.ParamIdx].epsBoost *= 2
	}
	return failed
}

// makeGroupRepFn builds the lazy per-group replica evaluator for the
// current batch: trial overlays and contexts are materialized on first
// use and shared across keys.
func (e *Engine) makeGroupRepFn(r *blockRunner, scale, sqrtP float64) func(string) []types.Value {
	b := r.b
	var trialOs []*overlay
	var tctxs []*expr.Ctx
	g := e.bind.groups[b.ParamIdx]
	return func(key string) []types.Value {
		if trialOs == nil {
			trialOs = make([]*overlay, e.opt.Trials)
			tctxs = make([]*expr.Ctx, e.opt.Trials)
			for j := range trialOs {
				trialOs[j] = r.overlayFor(j)
				tctxs[j] = e.bind.trialCtx(nil, j)
			}
		}
		point := types.Null
		if v, ok := g.point[key]; ok {
			point = v
		}
		reps := make([]types.Value, e.opt.Trials)
		var buf types.Row
		for j := range reps {
			reps[j] = types.Null
			if post, ok := trialOs[j].postInto(b, key, scale, buf); ok {
				buf = post
				tctxs[j].Row = post
				reps[j] = adjustRep(point, b.Select[0].Eval(tctxs[j]), sqrtP)
			}
		}
		return reps
	}
}

// groupSupport is the number of tuples deterministically folded into a
// group (uncertain-set folds excluded).
func (e *Engine) groupSupport(r *blockRunner, key string) int {
	if en, ok := r.tab.m[key]; ok {
		return en.n
	}
	return 0
}

// groupSampledSupport is the number of bootstrap-subsampled tuples
// folded into a group; ranges need at least two to carry dispersion.
func (e *Engine) groupSampledSupport(r *blockRunner, key string) int {
	if en, ok := r.tab.m[key]; ok {
		return en.ns
	}
	return 0
}

func (e *Engine) updateSetBinding(r *blockRunner, scale float64, complete bool) bool {
	b := r.b
	mainO := r.overlayFor(-1)
	pctx := e.bind.pointCtx(nil)
	te := e.triEnv()
	sb := e.bind.sets[b.ParamIdx]
	// Per-trial membership is provided lazily: only the keys probed by
	// snapshot error estimation pay for per-trial evaluation.
	sb.reps = map[string][]bool{}
	sb.repFn = e.makeSetRepFn(r, scale)
	fracSeen := 0.0
	if ts := e.tables[b.Input.Fact]; ts.total > 0 {
		fracSeen = float64(ts.seen) / float64(ts.total)
	}
	var postBuf types.Row
	failed := false
	for _, key := range mainO.keys() {
		en := mainO.entry(key)
		if en == nil {
			continue
		}
		postBuf = exec.PostRowInto(b, en, scale, postBuf)
		post := postBuf
		// Point membership.
		pctx.Row = post
		member := b.Having == nil || b.Having.Eval(pctx).Truthy()
		// Tri-state membership via row ranges on the post-agg layout.
		// Groups below the minimum support never classify
		// deterministically (their bootstrap ranges are unreliable);
		// once the table is fully consumed the point answer is exact.
		t := triTrue // no HAVING: membership is monotone (key present → member)
		if b.Having != nil {
			switch {
			case complete:
				t = triFromBool(member)
			case e.groupSupport(r, key) < e.opt.MinGroupSupport ||
				(!r.allCLT && e.groupSampledSupport(r, key) < e.opt.MinGroupSupport):
				t = triUnknown
			default:
				boost := sb.epsBoost
				z := (cltZBase + e.opt.EpsilonSigma) * boost
				te.rowRanges = e.setRowRanges(r, key, post, scale, fracSeen, z, boost, te.rowRanges)
				t = te.evalTri(b.Having, post)
				te.rowRanges = nil
			}
		}
		if e.bind.updateSetEntry(b.ParamIdx, key, member, t) {
			failed = true
		}
	}
	if failed {
		e.bind.sets[b.ParamIdx].epsBoost *= 2
	}
	return failed
}

// setRowRanges builds the per-slot variation ranges for a set block's
// group: exact points for key slots, CLT ranges for estimable
// aggregates, bootstrap replica ranges as the fallback.
func (e *Engine) setRowRanges(r *blockRunner, key string, post types.Row, scale, fracSeen, z, boost float64, out []paramRange) []paramRange {
	b := r.b
	out = out[:0]
	baseEn := r.tab.m[key]
	var repVals [][]float64 // built lazily only if a fallback is needed
	for c := range post {
		if c < len(b.GroupBy) {
			if fv, ok := post[c].AsFloat(); ok {
				out = append(out, okRange(bootstrap.Point(fv)))
			} else {
				out = append(out, paramRange{status: rsUnknown})
			}
			continue
		}
		var pr paramRange
		pr.status = rsUnknown
		ia := c - len(b.GroupBy)
		if baseEn != nil && baseEn.clt != nil && r.cltKinds[ia] != cltNone {
			pr = cltRange(r.cltKinds[ia], &baseEn.clt[ia], scale, fracSeen, z)
		}
		if pr.status == rsUnknown {
			if repVals == nil {
				repVals = e.setRepPostValues(r, key, post, scale)
			}
			pr = buildRangeFromFloats(post[c], repVals[c], e.opt.EpsilonSigma*boost, e.opt.Trials)
		}
		out = append(out, pr)
	}
	return out
}

// setRepPostValues evaluates a set-block group's adjusted per-trial
// post-aggregate values (the bootstrap fallback for non-CLT slots).
func (e *Engine) setRepPostValues(r *blockRunner, key string, post types.Row, scale float64) [][]float64 {
	b := r.b
	sqrtP := e.tables[b.Input.Fact].sqrtP
	extensive := extensiveSlots(b)
	repVals := make([][]float64, len(post))
	var buf types.Row
	for j := 0; j < e.opt.Trials; j++ {
		tpost, ok := r.overlayFor(j).postInto(b, key, scale, buf)
		if !ok {
			continue
		}
		buf = tpost
		for c := range buf {
			v := buf[c]
			if v.IsNull() && extensive[c] {
				v = types.NewFloat(0)
			}
			v = adjustRep(post[c], v, sqrtP)
			if f, ok := v.AsFloat(); ok {
				repVals[c] = append(repVals[c], f)
			}
		}
	}
	return repVals
}

// extensiveSlots flags the post-aggregate slots holding SUM/COUNT: a
// zero-weight resample of a group carries zero mass there, it is not
// "unknown".
func extensiveSlots(b *plan.Block) []bool {
	width := b.PostAggWidth()
	out := make([]bool, width)
	for c := len(b.GroupBy); c < width; c++ {
		name := b.Aggs[c-len(b.GroupBy)].Name
		out[c] = name == "SUM" || name == "COUNT"
	}
	return out
}

// makeSetRepFn builds the lazy per-key, per-trial membership evaluator
// for the current batch.
func (e *Engine) makeSetRepFn(r *blockRunner, scale float64) func(string) []bool {
	b := r.b
	sqrtP := e.tables[b.Input.Fact].sqrtP
	extensive := extensiveSlots(b)
	var trialOs []*overlay
	var tctxs []*expr.Ctx
	return func(key string) []bool {
		if trialOs == nil {
			trialOs = make([]*overlay, e.opt.Trials)
			tctxs = make([]*expr.Ctx, e.opt.Trials)
			for j := range trialOs {
				trialOs[j] = r.overlayFor(j)
				tctxs[j] = e.bind.trialCtx(nil, j)
			}
		}
		// Point post row of the key, for the m-out-of-n adjustment.
		var post types.Row
		mainO := r.overlayFor(-1)
		if en := mainO.entry(key); en != nil {
			post = exec.PostRow(b, en, scale)
		}
		reps := make([]bool, e.opt.Trials)
		var buf types.Row
		for j := range reps {
			tpost, ok := trialOs[j].postInto(b, key, scale, buf)
			if !ok {
				continue
			}
			buf = tpost
			for c := range buf {
				if buf[c].IsNull() && extensive[c] {
					buf[c] = types.NewFloat(0)
				}
				if post != nil {
					buf[c] = adjustRep(post[c], buf[c], sqrtP)
				}
			}
			tctxs[j].Row = buf
			reps[j] = b.Having == nil || b.Having.Eval(tctxs[j]).Truthy()
		}
		return reps
	}
}

// buildRangeFromFloats is buildRange over already-extracted replica
// floats; trials is the configured trial count, against which replica
// evidence is judged sufficient.
func buildRangeFromFloats(point types.Value, reps []float64, epsSigma float64, trials int) paramRange {
	if len(reps) < minReplicaObs(trials) {
		return paramRange{status: rsUnknown}
	}
	vals := make([]types.Value, len(reps))
	for i, f := range reps {
		vals[i] = types.NewFloat(f)
	}
	return buildRange(point, vals, epsSigma)
}

// ctxHolder keeps a reusable per-trial expression context.
type ctxHolder struct{ ctx *expr.Ctx }
