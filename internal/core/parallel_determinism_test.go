package core

import (
	"fmt"
	"reflect"
	"testing"

	"fluodb/internal/bootstrap"
	"fluodb/internal/plan"
	"fluodb/internal/storage"
	"fluodb/internal/types"
)

// Parallel mini-batch folding must be a pure implementation detail: with
// the same seed, a sharded run merges to bit-identical snapshots as a
// serial run — group estimates, confidence intervals, RSDs, and group
// insertion order.
//
// The fixture makes floating-point equality exact rather than
// approximate: measures are integer-valued (so every fold is an exact
// float64 add and reassociation cannot round differently), the bootstrap
// subsample is unbounded (sqrtP = 1, so no m-out-of-n rescaling), and
// the first rows enumerate every group (so shard 0 — merged first —
// fixes the same insertion order the serial run sees).

// determinismCatalog enumerates all 8×16 (a, b) groups in the first 128
// rows, then appends uniform rows with integer-valued measures.
func determinismCatalog(n int, seed uint64) *storage.Catalog {
	cat := storage.NewCatalog()
	t := storage.NewTable("facts", types.NewSchema(
		"a", types.KindString,
		"b", types.KindInt,
		"x", types.KindFloat,
	))
	as := []string{"aa", "bb", "cc", "dd", "ee", "ff", "gg", "hh"}
	for i := 0; i < 8; i++ {
		for j := 0; j < 16; j++ {
			_ = t.Append(types.Row{
				types.NewString(as[i]),
				types.NewInt(int64(j)),
				types.NewFloat(float64(i + j)),
			})
		}
	}
	rng := bootstrap.NewRNG(seed)
	for i := 128; i < n; i++ {
		_ = t.Append(types.Row{
			types.NewString(as[rng.Intn(len(as))]),
			types.NewInt(int64(rng.Intn(16))),
			types.NewFloat(float64(rng.Intn(1000))),
		})
	}
	cat.Put(t)
	return cat
}

func runSnapshots(t *testing.T, cat *storage.Catalog, sql string, o Options) []*Snapshot {
	t.Helper()
	q, err := plan.Compile(sql, cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(q, cat, o)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var snaps []*Snapshot
	for {
		snap, err := eng.Step()
		if err == ErrDone {
			return snaps
		}
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, snap)
	}
}

// compareSnapshots asserts two snapshot series are bit-identical row by
// row (group order included).
func compareSnapshots(t *testing.T, label string, serial, parallel []*Snapshot) {
	t.Helper()
	if len(serial) != len(parallel) {
		t.Fatalf("%s: snapshot count: serial %d, parallel %d", label, len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if len(s.Rows) != len(p.Rows) {
			t.Fatalf("%s: batch %d: row count: serial %d, parallel %d", label, i+1, len(s.Rows), len(p.Rows))
		}
		for r := range s.Rows {
			if !reflect.DeepEqual(s.Rows[r], p.Rows[r]) {
				t.Errorf("%s: batch %d row %d differs:\n serial:   %+v\n parallel: %+v",
					label, i+1, r, s.Rows[r], p.Rows[r])
			}
		}
	}
}

const determinismSQL = `SELECT a, b, COUNT(x), SUM(x), AVG(x) FROM facts GROUP BY a, b`

func determinismOptions(seed uint64) Options {
	return Options{
		Batches: 3, Trials: 50, Seed: seed,
		BootstrapSampleCap: -1, Parallelism: 1,
		// Threshold low enough that P=8 engages on the 8192-row batches
		// (the worker clamp caps workers at rows/threshold).
		ParallelThreshold: 512,
	}
}

// TestParallelFoldBitIdentical sweeps the pooled runtime across
// P∈{1,2,4,8} (pipelined weight prefetch included — it activates with
// the pool) and the legacy per-batch-spawn runtime, asserting every
// configuration reproduces the serial snapshots bit for bit.
func TestParallelFoldBitIdentical(t *testing.T) {
	for _, seed := range []uint64{1, 7, 23} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cat := determinismCatalog(3*8192, seed)
			serial := runSnapshots(t, cat, determinismSQL, determinismOptions(seed))
			for _, p := range []int{2, 4, 8} {
				o := determinismOptions(seed)
				o.Parallelism = p
				compareSnapshots(t, fmt.Sprintf("pool P=%d", p),
					serial, runSnapshots(t, cat, determinismSQL, o))
			}
			o := determinismOptions(seed)
			o.Parallelism = 4
			o.PerBatchSpawn = true
			compareSnapshots(t, "spawn P=4",
				serial, runSnapshots(t, cat, determinismSQL, o))
		})
	}
}

// TestRecomputeReplayBitIdentical forces a variation-range failure
// mid-run and asserts the replayed parallel result is byte-identical to
// a serial run — the guard for prefetch invalidation and pool draining
// across replayUpTo (meaningful under -race too: replay overlaps the
// in-flight prefetch of the batch that failed).
//
// The fixture streams an ascending integer measure, so the scalar
// subquery's prefix AVG drifts upward monotonically: a range committed
// against an early prefix must fail as later batches arrive. Integer
// measures keep every float operation exact (see the package comment on
// determinismCatalog), so bit-identity is a meaningful assertion.
func TestRecomputeReplayBitIdentical(t *testing.T) {
	const sql = `SELECT a, COUNT(x), SUM(x) FROM drift
		WHERE x < (SELECT 0.6 * AVG(x) FROM drift) GROUP BY a`
	cat := storage.NewCatalog()
	tb := storage.NewTable("drift", types.NewSchema(
		"a", types.KindString,
		"x", types.KindFloat,
	))
	as := []string{"aa", "bb", "cc", "dd", "ee", "ff", "gg", "hh"}
	n := 8 * 2048
	for i := 0; i < n; i++ {
		_ = tb.Append(types.Row{
			types.NewString(as[i%len(as)]),
			types.NewFloat(float64(i)),
		})
	}
	cat.Put(tb)

	opts := func(parallelism int) Options {
		return Options{
			Batches: 8, Trials: 40, Seed: 11,
			BootstrapSampleCap: -1,
			EpsilonSigma:       0.25, // tight ranges: the drifting AVG must escape
			Parallelism:        parallelism,
			ParallelThreshold:  256,
		}
	}
	recomputes := func(t *testing.T, o Options) ([]*Snapshot, int) {
		q, err := plan.Compile(sql, cat)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New(q, cat, o)
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		var snaps []*Snapshot
		for {
			snap, err := eng.Step()
			if err == ErrDone {
				return snaps, eng.Metrics().Recomputes
			}
			if err != nil {
				t.Fatal(err)
			}
			snaps = append(snaps, snap)
		}
	}
	serial, sRec := recomputes(t, opts(1))
	parallel, pRec := recomputes(t, opts(4))
	if sRec == 0 {
		t.Fatal("fixture chosen to force a variation-range failure reported Recomputes = 0")
	}
	if sRec != pRec {
		t.Fatalf("recompute count: serial %d, parallel %d", sRec, pRec)
	}
	compareSnapshots(t, "recompute P=4", serial, parallel)
}
