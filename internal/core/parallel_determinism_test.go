package core

import (
	"fmt"
	"reflect"
	"testing"

	"fluodb/internal/bootstrap"
	"fluodb/internal/plan"
	"fluodb/internal/storage"
	"fluodb/internal/types"
)

// Parallel mini-batch folding must be a pure implementation detail: with
// the same seed, a sharded run merges to bit-identical snapshots as a
// serial run — group estimates, confidence intervals, RSDs, and group
// insertion order.
//
// The fixture makes floating-point equality exact rather than
// approximate: measures are integer-valued (so every fold is an exact
// float64 add and reassociation cannot round differently), the bootstrap
// subsample is unbounded (sqrtP = 1, so no m-out-of-n rescaling), and
// the first rows enumerate every group (so shard 0 — merged first —
// fixes the same insertion order the serial run sees).

// determinismCatalog enumerates all 8×16 (a, b) groups in the first 128
// rows, then appends uniform rows with integer-valued measures.
func determinismCatalog(n int, seed uint64) *storage.Catalog {
	cat := storage.NewCatalog()
	t := storage.NewTable("facts", types.NewSchema(
		"a", types.KindString,
		"b", types.KindInt,
		"x", types.KindFloat,
	))
	as := []string{"aa", "bb", "cc", "dd", "ee", "ff", "gg", "hh"}
	for i := 0; i < 8; i++ {
		for j := 0; j < 16; j++ {
			_ = t.Append(types.Row{
				types.NewString(as[i]),
				types.NewInt(int64(j)),
				types.NewFloat(float64(i + j)),
			})
		}
	}
	rng := bootstrap.NewRNG(seed)
	for i := 128; i < n; i++ {
		_ = t.Append(types.Row{
			types.NewString(as[rng.Intn(len(as))]),
			types.NewInt(int64(rng.Intn(16))),
			types.NewFloat(float64(rng.Intn(1000))),
		})
	}
	cat.Put(t)
	return cat
}

func runSnapshots(t *testing.T, cat *storage.Catalog, seed uint64, parallelism int) []*Snapshot {
	t.Helper()
	q, err := plan.Compile(`SELECT a, b, COUNT(x), SUM(x), AVG(x) FROM facts GROUP BY a, b`, cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(q, cat, Options{
		Batches: 3, Trials: 50, Seed: seed,
		BootstrapSampleCap: -1, Parallelism: parallelism,
	})
	if err != nil {
		t.Fatal(err)
	}
	var snaps []*Snapshot
	for {
		snap, err := eng.Step()
		if err == ErrDone {
			return snaps
		}
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, snap)
	}
}

func TestParallelFoldBitIdentical(t *testing.T) {
	for _, seed := range []uint64{1, 7, 23} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cat := determinismCatalog(3*8192, seed)
			serial := runSnapshots(t, cat, seed, 1)
			parallel := runSnapshots(t, cat, seed, 4)
			if len(serial) != len(parallel) {
				t.Fatalf("snapshot count: serial %d, parallel %d", len(serial), len(parallel))
			}
			for i := range serial {
				s, p := serial[i], parallel[i]
				if len(s.Rows) != len(p.Rows) {
					t.Fatalf("batch %d: row count: serial %d, parallel %d", i+1, len(s.Rows), len(p.Rows))
				}
				for r := range s.Rows {
					if !reflect.DeepEqual(s.Rows[r], p.Rows[r]) {
						t.Errorf("batch %d row %d differs:\n serial:   %+v\n parallel: %+v",
							i+1, r, s.Rows[r], p.Rows[r])
					}
				}
			}
		})
	}
}
