package core

import (
	"fmt"
	"sync"

	"fluodb/internal/chaos"
	"fluodb/internal/types"
)

// Sharded execution (DESIGN.md §17). A shard engine is one partition
// executor behind the coordinator: it receives a contiguous slice of a
// mini-batch for one lineage block and folds it into a private staging
// delta — aggregate table, uncertain-set additions, adopted weight
// chunks, fold count and phase times — which the coordinator merges in
// shard order. Shards hold no cross-batch aggregate state of their own
// (the engine's runner tables stay authoritative), which is what makes
// a shard death recoverable: a replacement shard redoing the same slice
// from the same committed state produces the same delta.
//
// localShard is the goroutine-local implementation. The loop must not
// retain engine references between requests (the request carries them),
// so an abandoned engine stays finalizable and its Close backstop can
// shut the shard goroutines down — the same discipline the worker pool
// follows (pool.go).

// ShardEngine is the execution interface between the coordinator and
// one shard. The goroutine-local implementation runs in-process;
// process separation later means marshalling ShardTask slices and
// deltas over a transport behind this same interface (the deterministic
// hash partitioner in internal/storage is the placement half of that
// stage).
type ShardEngine interface {
	// ID is the shard's slot in the coordinator's topology.
	ID() int
	// Incarnation distinguishes a replacement shard from the dead one it
	// replaced; chaos decisions key on it.
	Incarnation() int
	// Step folds one dispatched slice and returns its staging delta. A
	// non-nil error means the shard produced nothing usable (killed,
	// panicked); a killed shard must not accept further Steps.
	Step(t *ShardTask) (*ShardDelta, error)
	// Close shuts the shard down (idempotent; safe after death).
	Close()
}

// ShardTask is one dispatch unit: fold rows (a contiguous slice of one
// mini-batch, starting at global row index baseIdx) of runner r's fact
// table, with up to workers-way intra-shard parallelism.
type ShardTask struct {
	r       *blockRunner
	rows    []types.Row
	baseIdx int
	ts      *tableStream
	pf      *weightPrefetch
	workers int
	thr     int
}

// ShardDelta is the staged result of one ShardTask, mergeable into the
// runner exactly like a pool worker's shard state (parallel.go).
type ShardDelta struct {
	tab       *onlineTable
	uncertain []uncertainRow
	arena     weightArena
	folds     int64
	acc       phaseAcc
}

// debugShardPanics, when set by a test, re-raises contained shard
// panics so their stacks surface.
var debugShardPanics bool

// shardCall pairs a task with its reply channel.
type shardCall struct {
	task *ShardTask
	resp chan shardResult
}

type shardResult struct {
	delta *ShardDelta
	err   error
}

// localShard is a goroutine-local ShardEngine: one persistent goroutine
// consuming tasks from a channel. It deliberately holds no *Engine —
// only the chaos injector (engine-independent) and its coordinates.
type localShard struct {
	id    int
	inc   int
	inj   *chaos.Injector
	calls chan shardCall
	done  chan struct{}
}

func newLocalShard(id, inc int, inj *chaos.Injector) *localShard {
	s := &localShard{id: id, inc: inc, inj: inj,
		calls: make(chan shardCall), done: make(chan struct{})}
	go s.loop()
	return s
}

func (s *localShard) ID() int          { return s.id }
func (s *localShard) Incarnation() int { return s.inc }

// Step dispatches one task and waits for the delta. If the shard died
// handling it (injected kill or loop exit), the error reports it.
func (s *localShard) Step(t *ShardTask) (*ShardDelta, error) {
	call := shardCall{task: t, resp: make(chan shardResult, 1)}
	select {
	case s.calls <- call:
	case <-s.done:
		return nil, fmt.Errorf("shard %d (incarnation %d): dead", s.id, s.inc)
	}
	res := <-call.resp
	return res.delta, res.err
}

// Close shuts the shard goroutine down and waits for it to exit.
func (s *localShard) Close() {
	select {
	case <-s.done: // already dead (killed or closed)
	default:
		close(s.calls)
		<-s.done
	}
}

// loop is the shard goroutine: take a task, decide injected faults,
// fold, reply. A kill makes the goroutine exit after replying — the
// shard is then dead and the coordinator must spawn a replacement.
func (s *localShard) loop() {
	defer close(s.done)
	for call := range s.calls {
		t := call.task
		if s.inj.ShardKill(t.ts.name, t.baseIdx, s.id, s.inc) {
			t.r.eng.traceFault("shard-kill", t.ts.name, s.id,
				fmt.Sprintf("injected shard death (incarnation %d)", s.inc))
			call.resp <- shardResult{err: fmt.Errorf(
				"shard %d (incarnation %d): killed at %s[%d]", s.id, s.inc, t.ts.name, t.baseIdx)}
			return
		}
		if s.inj.ShardStraggler(t.ts.name, t.baseIdx, s.id, s.inc) {
			t.r.eng.traceFault("shard-straggler", t.ts.name, s.id,
				fmt.Sprintf("injected shard delay (incarnation %d)", s.inc))
			s.inj.Sleep()
		}
		delta, err := s.step(t)
		call.resp <- shardResult{delta: delta, err: err}
	}
}

// step folds the task's slice, splitting it across up to t.workers
// sub-slices. Sub-slice deltas merge left-to-right, so the shard's
// delta has the same group order as a serial fold of the whole slice —
// and the coordinator's shard-order merge then reproduces the global
// serial order (contiguous slices compose; see DESIGN.md §17). A panic
// anywhere in the fold is contained into an error: the coordinator
// treats it like a shard death and redoes the slice on a replacement.
func (s *localShard) step(t *ShardTask) (delta *ShardDelta, err error) {
	defer func() {
		if v := recover(); v != nil {
			if debugShardPanics {
				panic(v)
			}
			delta, err = nil, fmt.Errorf("shard %d (incarnation %d): contained panic: %s",
				s.id, s.inc, panicNote(v))
		}
	}()
	n := len(t.rows)
	workers := t.workers
	if workers <= 1 || n < 2*t.thr {
		workers = 1
	} else if max := n / t.thr; workers > max {
		workers = max
	}
	if workers <= 1 {
		return s.foldSlice(t, t.rows, t.baseIdx), nil
	}
	subs := make([]*ShardDelta, workers)
	panics := make([]any, workers)
	var wg sync.WaitGroup
	size := n / workers
	for w := 0; w < workers; w++ {
		lo := w * size
		hi := lo + size
		if w == workers-1 {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					panics[w] = v
				}
			}()
			subs[w] = s.foldSlice(t, t.rows[lo:hi], t.baseIdx+lo)
		}(w, lo, hi)
	}
	wg.Wait()
	for w := range panics {
		if panics[w] != nil {
			return nil, fmt.Errorf("shard %d (incarnation %d): contained panic: %s",
				s.id, s.inc, panicNote(panics[w]))
		}
	}
	out := subs[0]
	for w := 1; w < workers; w++ {
		out.tab.merge(subs[w].tab)
		out.uncertain = append(out.uncertain, subs[w].uncertain...)
		out.arena.adopt(&subs[w].arena)
		out.folds += subs[w].folds
		out.acc.merge(&subs[w].acc)
	}
	return out, nil
}

// foldSlice folds one sub-slice into a fresh staging delta through the
// shared feedShard primitive (columnar when the block's plan applies,
// prefetched weights when the buffer covers the batch). The joiner
// clone and classification environment are per-goroutine, exactly as in
// the per-batch-spawn runtime.
func (s *localShard) foldSlice(t *ShardTask, rows []types.Row, baseIdx int) *ShardDelta {
	r := t.r
	e := r.eng
	d := &ShardDelta{tab: newShardTable(e.opt.Trials)}
	d.tab.configure(r.cltKinds)
	wr := *r // shallow: shares block/engine/plan, swaps per-goroutine scratch
	wr.joiner = r.joiner.CloneForWorker()
	wte := e.triEnv()
	wr.feedShard(rows, baseIdx, t.ts, wte, d.tab, &d.uncertain, &d.arena,
		&d.folds, &d.acc, nil, t.pf, &colScratch{})
	return d
}
