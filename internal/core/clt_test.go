package core

import (
	"math"
	"testing"
	"testing/quick"

	"fluodb/internal/plan"
	"fluodb/internal/types"
)

func TestCltKindOf(t *testing.T) {
	cases := []struct {
		name     string
		distinct bool
		want     cltKind
	}{
		{"AVG", false, cltAvg},
		{"SUM", false, cltSum},
		{"COUNT", false, cltCount},
		{"COUNT", true, cltNone}, // DISTINCT breaks the CLT form
		{"MIN", false, cltNone},
		{"MEDIAN", false, cltNone},
	}
	for _, c := range cases {
		spec := &plan.AggSpec{Name: c.name, Distinct: c.distinct}
		if got := cltKindOf(spec); got != c.want {
			t.Errorf("cltKindOf(%s, distinct=%v) = %v, want %v", c.name, c.distinct, got, c.want)
		}
	}
}

func TestCltAccWelford(t *testing.T) {
	var a cltAcc
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, v := range vals {
		a.add(v)
	}
	if a.n != 8 || math.Abs(a.mean-5) > 1e-12 {
		t.Fatalf("n=%v mean=%v", a.n, a.mean)
	}
	want := 32.0 / 7.0 // sample variance
	if math.Abs(a.variance()-want) > 1e-12 {
		t.Errorf("variance = %v, want %v", a.variance(), want)
	}
	var empty cltAcc
	if empty.variance() != 0 {
		t.Error("variance of empty acc")
	}
}

func TestCltRangeAvgCoversTruth(t *testing.T) {
	// Property: for normal-ish data, the AVG range from a prefix covers
	// the full-population mean in the vast majority of draws.
	var a cltAcc
	truth := 0.0
	n := 1000
	seen := 200
	rng := newTestRNG(5)
	var all []float64
	for i := 0; i < n; i++ {
		v := rng.norm()*10 + 50
		all = append(all, v)
		truth += v
	}
	truth /= float64(n)
	for i := 0; i < seen; i++ {
		a.add(all[i])
	}
	f := float64(seen) / float64(n)
	r := cltRange(cltAvg, &a, 1/f, f, cltZBase+1)
	if r.status != rsOK {
		t.Fatalf("status = %v", r.status)
	}
	if !r.r.Contains(truth) {
		t.Errorf("range [%g,%g] misses truth %g", r.r.Lo, r.r.Hi, truth)
	}
	// finite-population correction: at f→1 the range collapses
	for i := seen; i < n; i++ {
		a.add(all[i])
	}
	r2 := cltRange(cltAvg, &a, 1, 1, cltZBase+1)
	if r2.r.Hi-r2.r.Lo > 1e-9 {
		t.Errorf("complete-scan range should collapse, got width %g", r2.r.Hi-r2.r.Lo)
	}
	// the collapsed range sits on the exact mean (up to float summation
	// order between Welford and the two-pass truth)
	if math.Abs(r2.r.Lo-truth) > 1e-9*(1+math.Abs(truth)) {
		t.Errorf("collapsed range at %g, truth %g", r2.r.Lo, truth)
	}
}

func TestCltRangeSumAndCount(t *testing.T) {
	var a cltAcc
	for i := 0; i < 100; i++ {
		a.add(10)
	}
	f := 0.25
	scale := 1 / f
	rs := cltRange(cltSum, &a, scale, f, 3.6)
	if rs.status != rsOK {
		t.Fatalf("sum status = %v", rs.status)
	}
	point := scale * 100 * 10
	if !rs.r.Contains(point) {
		t.Error("sum range must contain its point estimate")
	}
	rc := cltRange(cltCount, &a, scale, f, 3.6)
	if rc.status != rsOK || !rc.r.Contains(scale*100) {
		t.Errorf("count range = %+v", rc)
	}
	// COUNT over empty input is exactly 0
	var empty cltAcc
	rc0 := cltRange(cltCount, &empty, scale, f, 3.6)
	if rc0.status != rsOK || rc0.r.Lo != 0 || rc0.r.Hi != 0 {
		t.Errorf("empty count range = %+v", rc0)
	}
	// SUM/AVG over empty input is NULL
	if cltRange(cltSum, &empty, scale, f, 3.6).status != rsNull {
		t.Error("empty sum should be NULL")
	}
	// single observation leaves the variance unidentified
	var one cltAcc
	one.add(5)
	if cltRange(cltAvg, &one, scale, f, 3.6).status != rsUnknown {
		t.Error("n=1 AVG range should be unknown")
	}
}

func TestCltRangeWidthShrinksQuick(t *testing.T) {
	// Property: with more data seen (larger f, larger n), the AVG range
	// narrows.
	prop := func(seed uint64) bool {
		rng := newTestRNG(seed)
		var a cltAcc
		for i := 0; i < 50; i++ {
			a.add(rng.norm() * 5)
		}
		early := cltRange(cltAvg, &a, 4, 0.25, 3.6)
		for i := 0; i < 450; i++ {
			a.add(rng.norm() * 5)
		}
		late := cltRange(cltAvg, &a, 4.0/3, 0.75, 3.6)
		if early.status != rsOK || late.status != rsOK {
			return true
		}
		return late.r.Hi-late.r.Lo < early.r.Hi-early.r.Lo
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// newTestRNG is a tiny gaussian-capable generator for the tests.
type testRNG struct{ s uint64 }

func newTestRNG(seed uint64) *testRNG {
	if seed == 0 {
		seed = 1
	}
	return &testRNG{s: seed}
}

func (r *testRNG) next() float64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return float64(r.s>>11) / (1 << 53)
}

func (r *testRNG) norm() float64 {
	u1 := r.next()
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*r.next())
}

func TestAdjustRep(t *testing.T) {
	p := types.NewFloat(10)
	r := types.NewFloat(20)
	// p = 1 → no change
	if got := adjustRep(p, r, 1); got.Float() != 20 {
		t.Errorf("sqrtP=1: %v", got)
	}
	// sqrtP = 0.5 → deviation halves
	if got := adjustRep(p, r, 0.5); got.Float() != 15 {
		t.Errorf("sqrtP=0.5: %v", got)
	}
	// non-numeric passthrough
	if got := adjustRep(types.Null, r, 0.5); got.Float() != 20 {
		t.Errorf("null point: %v", got)
	}
	if got := adjustRep(p, types.Null, 0.5); !got.IsNull() {
		t.Errorf("null rep: %v", got)
	}
}
