package core

import (
	"strings"
	"testing"
	"time"

	"fluodb/internal/plan"
)

// q17SQL is the nested non-monotonic workload used by the profiler
// tests: the correlated AVG subquery's per-group estimates can move
// against the committed variation ranges, so the engine exercises
// uncertain caching, range maintenance and (with tight epsilon)
// recomputation.
const q17SQL = `SELECT SUM(extendedprice) / 7.0 FROM lineitem l
	WHERE quantity < (SELECT 0.5 * AVG(quantity) FROM lineitem i WHERE i.partkey = l.partkey)`

// profiledQ17 runs Q17 at a scale/epsilon empirically known to trigger
// at least one variation-range failure, with full instrumentation on.
func profiledQ17(t *testing.T) (*Engine, *Tracer) {
	t.Helper()
	cat := synthCatalog(6000, 40, 5)
	q, err := plan.Compile(q17SQL, cat)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(1 << 14)
	// Parallelism 1: the consistency checks below compare phase sums
	// against batch wall time, which only decomposes serially (parallel
	// workers sum goroutine time).
	eng, err := New(q, cat, Options{Batches: 10, Trials: 30, Seed: 7,
		EpsilonSigma: 0.3, Parallelism: 1, Profile: true, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(nil); err != nil {
		t.Fatal(err)
	}
	return eng, tr
}

func TestMetricsPhaseConsistency(t *testing.T) {
	eng, _ := profiledQ17(t)
	m := eng.Metrics()

	if m.Batches != 10 {
		t.Fatalf("Batches = %d, want 10", m.Batches)
	}
	if m.Recomputes == 0 {
		t.Fatal("workload chosen to recompute reported Recomputes = 0")
	}
	if len(m.UncertainPerBatch) != m.Batches || len(m.BatchDurations) != m.Batches ||
		len(m.PhasePerBatch) != m.Batches {
		t.Fatalf("per-batch series lengths %d/%d/%d, want %d",
			len(m.UncertainPerBatch), len(m.BatchDurations), len(m.PhasePerBatch), m.Batches)
	}
	anyUncertain := false
	for _, u := range m.UncertainPerBatch {
		if u > 0 {
			anyUncertain = true
		}
	}
	if !anyUncertain {
		t.Fatal("nested workload never cached uncertain tuples")
	}

	// Every phase class must be populated: fine phases (Profile on),
	// coarse phases, and the recompute the workload forces. Join time is
	// exempt: columnar-eligible blocks (like both of Q17's — no dimension
	// tables) skip the join dispatch entirely, so join legitimately
	// profiles as zero.
	p := m.Phases
	if p.Fold == 0 || p.Weights == 0 || p.Classify == 0 {
		t.Fatalf("fine phases missing with Profile on: %+v", p)
	}
	if p.Ranges == 0 || p.Uncertain == 0 {
		t.Fatalf("coarse phases missing: %+v", p)
	}
	if p.Recompute == 0 || p.Snapshot == 0 {
		t.Fatalf("recompute/snapshot phases missing: %+v", p)
	}

	// Internal consistency: the cumulative breakdown equals the sum of
	// the per-batch breakdowns (same integers, merged), and with serial
	// folding each batch's disjoint in-batch work fits inside its wall
	// duration.
	var sum PhaseTimes
	for i, bp := range m.PhasePerBatch {
		sum.Join += bp.Join
		sum.Fold += bp.Fold
		sum.Weights += bp.Weights
		sum.Classify += bp.Classify
		sum.Uncertain += bp.Uncertain
		sum.Ranges += bp.Ranges
		sum.Recompute += bp.Recompute
		sum.Snapshot += bp.Snapshot
		if work := bp.BatchWork(); work > m.BatchDurations[i] {
			t.Fatalf("batch %d phase work %v exceeds batch duration %v", i+1, work, m.BatchDurations[i])
		}
		if bp.Recompute > m.BatchDurations[i] {
			t.Fatalf("batch %d recompute %v exceeds batch duration %v", i+1, bp.Recompute, m.BatchDurations[i])
		}
	}
	if sum != p {
		t.Fatalf("per-batch phases sum %+v != cumulative %+v", sum, p)
	}

	// Per-block profiles: one per lineage block, sub-block maintains
	// ranges, root never does, and block fold time sums (≤) into the
	// run total.
	if len(m.BlockPhases) != 2 {
		t.Fatalf("BlockPhases = %d entries, want 2", len(m.BlockPhases))
	}
	var blockFold time.Duration
	for _, bp := range m.BlockPhases {
		blockFold += bp.Phases.Fold
		if bp.Kind == "root" {
			if bp.Phases.Ranges != 0 {
				t.Fatalf("root block accrued range-maintenance time: %+v", bp.Phases)
			}
		} else if bp.Phases.Ranges == 0 {
			t.Fatalf("parameter block %d accrued no range-maintenance time", bp.Block)
		}
	}
	if blockFold != p.Fold {
		t.Fatalf("block fold times %v don't sum to run total %v", blockFold, p.Fold)
	}
}

func TestMetricsCoarsePhasesWithoutProfile(t *testing.T) {
	cat := synthCatalog(3000, 20, 5)
	q, err := plan.Compile(q17SQL, cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(q, cat, Options{Batches: 5, Trials: 20, Seed: 7, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(nil); err != nil {
		t.Fatal(err)
	}
	p := eng.Metrics().Phases
	if p.Join != 0 || p.Fold != 0 || p.Weights != 0 || p.Classify != 0 {
		t.Fatalf("fine phases recorded without Profile: %+v", p)
	}
	if p.Ranges == 0 || p.Snapshot == 0 {
		t.Fatalf("coarse phases must be collected even without Profile: %+v", p)
	}
}

func TestSnapshotCarriesPhases(t *testing.T) {
	cat := synthCatalog(3000, 20, 5)
	q, err := plan.Compile(q17SQL, cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(q, cat, Options{Batches: 5, Trials: 20, Seed: 7, Parallelism: 1, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := eng.Step()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Phases.Fold == 0 || snap.Phases.Snapshot == 0 {
		t.Fatalf("snapshot phases not populated: %+v", snap.Phases)
	}
	if len(snap.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(snap.Blocks))
	}
	for _, b := range snap.Blocks {
		if b.Phases.Fold == 0 {
			t.Fatalf("block %d carries no fold time: %+v", b.ID, b.Phases)
		}
	}
}

func TestReportBreakdown(t *testing.T) {
	eng, _ := profiledQ17(t)
	rep := eng.Report()
	for _, want := range []string{
		"G-OLA profile:", "recomputes", "phase totals:",
		"block 0 [", "block 1 [root]", "table=lineitem",
		"batch", "join", "fold", "weights", "classify", "uncertain", "ranges", "recompute", "snapshot",
	} {
		if !strings.Contains(rep, want) {
			t.Fatalf("Report() missing %q:\n%s", want, rep)
		}
	}
	// One per-batch trajectory line per processed batch.
	if got := strings.Count(rep, "\n"); got < 12 {
		t.Fatalf("Report() suspiciously short (%d lines):\n%s", got, rep)
	}
}

func TestPhaseTimesHelpers(t *testing.T) {
	p := PhaseTimes{Join: time.Millisecond, Fold: 2 * time.Millisecond,
		Recompute: 4 * time.Millisecond, Snapshot: 8 * time.Millisecond}
	if got := p.BatchWork(); got != 3*time.Millisecond {
		t.Fatalf("BatchWork = %v, want 3ms (recompute/snapshot excluded)", got)
	}
	ms := p.Milliseconds()
	if ms["join"] != 1 || ms["fold"] != 2 || ms["recompute"] != 4 || ms["snapshot"] != 8 {
		t.Fatalf("Milliseconds = %v", ms)
	}
	if _, ok := ms["weights"]; ok {
		t.Fatal("zero phases must be omitted from Milliseconds")
	}
	if len(PhaseNames) != numPhases {
		t.Fatalf("PhaseNames length %d != numPhases %d", len(PhaseNames), numPhases)
	}
	if s := p.String(); !strings.Contains(s, "join 1.0ms") || !strings.Contains(s, "fold 2.0ms") {
		t.Fatalf("String() = %q", s)
	}
}
