package core

import (
	"fmt"
	"testing"

	"fluodb/internal/bootstrap"
	"fluodb/internal/expr"
	"fluodb/internal/plan"
	"fluodb/internal/storage"
	"fluodb/internal/types"
)

// The columnar path (columnar.go) is pinned to be bit-identical to the
// row path: same snapshots, same CIs, same group order, across seeds and
// parallelism, with NULLs, dictionary strings, compilable WHERE clauses
// and nested-subquery (uncertain) predicates in play. Options.RowPath
// provides the reference run.

// columnarCatalog builds a fact table exercising every columnar feature:
// dictionary string keys, an int key, integer-valued float measures
// (exact float adds, so bit-identity is meaningful), NULLs in both a
// measure and a key column, and a second string column for LIKE.
func columnarCatalog(n int, seed uint64) *storage.Catalog {
	cat := storage.NewCatalog()
	t := storage.NewTable("facts", types.NewSchema(
		"a", types.KindString,
		"b", types.KindInt,
		"x", types.KindFloat,
		"s", types.KindString,
	))
	as := []string{"aa", "bb", "cc", "dd", "ee", "ff", "gg", "hh"}
	ss := []string{"alpha", "beta", "gamma", ""}
	// First rows enumerate all groups so shard 0 fixes insertion order.
	for i := 0; i < 8; i++ {
		for j := 0; j < 16; j++ {
			_ = t.Append(types.Row{
				types.NewString(as[i]),
				types.NewInt(int64(j)),
				types.NewFloat(float64(i + j)),
				types.NewString(ss[(i+j)%len(ss)]),
			})
		}
	}
	rng := bootstrap.NewRNG(seed)
	for i := 128; i < n; i++ {
		row := types.Row{
			types.NewString(as[rng.Intn(len(as))]),
			types.NewInt(int64(rng.Intn(16))),
			types.NewFloat(float64(rng.Intn(1000))),
			types.NewString(ss[rng.Intn(len(ss))]),
		}
		if rng.Intn(12) == 0 {
			row[2] = types.Null // NULL measure
		}
		if rng.Intn(40) == 0 {
			row[1] = types.Null // NULL group key
		}
		_ = t.Append(row)
	}
	cat.Put(t)
	// Dimension tables for the dims-grouped columnar path. bdim covers
	// only b∈[0,12): b=12..15 and NULL b miss the inner join, and keys 3
	// and 7 are duplicated so one fact key expands to two joined rows
	// (memoCnt > 1 in the join memo).
	bd := storage.NewTable("bdim", types.NewSchema(
		"bkey", types.KindInt, "cat", types.KindString))
	for k := 0; k < 12; k++ {
		_ = bd.Append(types.Row{
			types.NewInt(int64(k)),
			types.NewString([]string{"lo", "mid", "hi"}[k%3]),
		})
		if k == 3 || k == 7 {
			_ = bd.Append(types.Row{
				types.NewInt(int64(k)), types.NewString("dup"),
			})
		}
	}
	cat.Put(bd)
	// adim joins the dictionary string key; "hh" is missing so the
	// string-keyed join also filters.
	ad := storage.NewTable("adim", types.NewSchema(
		"akey", types.KindString, "region", types.KindString))
	for i, a := range as[:7] {
		_ = ad.Append(types.Row{
			types.NewString(a),
			types.NewString([]string{"north", "south"}[i%2]),
		})
	}
	cat.Put(ad)
	return cat
}

// columnarQueries span the eligibility space: plain fold, vectorized
// certain WHERE (numeric, string/LIKE, IS NULL, AND/OR), scalar blocks,
// and an uncertain nested-subquery predicate (per-row fallback on
// selected rows).
var columnarQueries = []struct {
	name string
	sql  string
}{
	{"group-fold", `SELECT a, b, COUNT(x), SUM(x), AVG(x) FROM facts GROUP BY a, b`},
	{"certain-where", `SELECT a, COUNT(x), SUM(x) FROM facts WHERE x < 600 AND b >= 4 GROUP BY a`},
	{"string-where", `SELECT b, COUNT(x), AVG(x) FROM facts WHERE s LIKE 'a%' OR s = 'beta' GROUP BY b`},
	{"null-where", `SELECT a, COUNT(x) FROM facts WHERE x IS NOT NULL AND b IS NOT NULL GROUP BY a`},
	{"scalar", `SELECT COUNT(x), SUM(x), AVG(x) FROM facts WHERE b < 12`},
	{"uncertain", `SELECT a, COUNT(x), SUM(x) FROM facts
		WHERE b >= 2 AND x < (SELECT 0.9 * AVG(x) FROM facts) GROUP BY a`},
	{"dims-join", `SELECT cat, COUNT(x), SUM(x), AVG(x) FROM facts f
		JOIN bdim d ON f.b = d.bkey GROUP BY cat`},
	{"dims-chain", `SELECT region, cat, COUNT(x), SUM(x) FROM facts f
		JOIN bdim d ON f.b = d.bkey
		JOIN adim e ON f.a = e.akey
		WHERE x < 700 GROUP BY region, cat`},
	{"dims-mixed-keys", `SELECT a, cat, COUNT(x), SUM(x), AVG(x) FROM facts f
		JOIN bdim d ON f.b = d.bkey GROUP BY a, cat`},
	{"dims-uncertain", `SELECT cat, COUNT(x), SUM(x) FROM facts f
		JOIN bdim d ON f.b = d.bkey
		WHERE x < (SELECT 0.9 * AVG(x) FROM facts) GROUP BY cat`},
}

func columnarOptions(seed uint64, parallelism int, rowPath bool) Options {
	return Options{
		Batches: 3, Trials: 40, Seed: seed,
		BootstrapSampleCap: -1,
		Parallelism:        parallelism,
		ParallelThreshold:  512,
		RowPath:            rowPath,
	}
}

// TestColumnarBitIdentical asserts the columnar classify/fold path
// reproduces the row path's snapshots bit for bit across seeds and
// P∈{1,2,4,8}. The row-path reference runs serially; the parallel row
// path is itself pinned to serial by TestParallelFoldBitIdentical, so
// this covers the full matrix.
func TestColumnarBitIdentical(t *testing.T) {
	for _, seed := range []uint64{1, 7, 23} {
		cat := columnarCatalog(3*8192, seed)
		for _, q := range columnarQueries {
			t.Run(fmt.Sprintf("%s/seed=%d", q.name, seed), func(t *testing.T) {
				ref := runSnapshots(t, cat, q.sql, columnarOptions(seed, 1, true))
				for _, p := range []int{1, 2, 4, 8} {
					got := runSnapshots(t, cat, q.sql, columnarOptions(seed, p, false))
					compareSnapshots(t, fmt.Sprintf("columnar P=%d", p), ref, got)
				}
			})
		}
	}
}

// TestColumnarSubsampleBitIdentical repeats the comparison with a
// bootstrap sample cap, exercising the subsample-membership gate and the
// direct float-weight generation (vs the uint8 round trip) under
// non-integral 1/p scaling. The row-path reference runs at the SAME
// parallelism: under a cap, replica folds scale by a non-integral 1/p,
// so serial and sharded runs legitimately reassociate differently (a
// pre-existing property of the parallel merge, independent of this
// path) — the columnar claim is bit-identity against the row path over
// the identical shard partition.
func TestColumnarSubsampleBitIdentical(t *testing.T) {
	cat := columnarCatalog(2*8192, 5)
	for _, q := range columnarQueries {
		t.Run(q.name, func(t *testing.T) {
			for _, p := range []int{1, 4} {
				or := columnarOptions(5, p, true)
				or.BootstrapSampleCap = 3000
				ref := runSnapshots(t, cat, q.sql, or)
				oc := columnarOptions(5, p, false)
				oc.BootstrapSampleCap = 3000
				compareSnapshots(t, fmt.Sprintf("capped P=%d", p),
					ref, runSnapshots(t, cat, q.sql, oc))
			}
		})
	}
}

// TestColumnarPlanEligibility pins the fallback decisions: expression
// group keys, non-CLT aggregates and RowPath must all reject the plan,
// while the plain fold shape accepts it.
func TestColumnarPlanEligibility(t *testing.T) {
	cat := columnarCatalog(4000, 3)
	build := func(sql string, rowPath bool) *blockRunner {
		q, err := plan.Compile(sql, cat)
		if err != nil {
			t.Fatal(err)
		}
		o := Options{Batches: 2, Trials: 10, Seed: 3, Parallelism: 1, RowPath: rowPath}
		eng, err := New(q, cat, o)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(eng.Close)
		return eng.runners[len(eng.runners)-1]
	}
	verdict := func(sql string, rowPath bool) string {
		return build(sql, rowPath).colPl.verdict()
	}
	// The verdict strings are API: Metrics/Report and the EvColPlan trace
	// event surface them verbatim, so pin them exactly.
	for _, tc := range []struct {
		sql     string
		rowPath bool
		want    string
	}{
		{`SELECT a, SUM(x) FROM facts GROUP BY a`, false, "columnar:fused"},
		{`SELECT a, b, SUM(x), COUNT(s) FROM facts GROUP BY a, b`, false, "columnar"},
		{`SELECT a, SUM(x) FROM facts GROUP BY a`, true, "rowpath:forced"},
		{`SELECT b + 1, SUM(x) FROM facts GROUP BY b + 1`, false, "rowpath:group:expr-key"},
		{`SELECT a, MIN(x) FROM facts GROUP BY a`, false, "rowpath:agg:not-estimable"},
		{`SELECT a, SUM(x + 1) FROM facts GROUP BY a`, false, "rowpath:agg:expr-arg"},
		{`SELECT cat, SUM(x) FROM facts f JOIN bdim d ON f.b = d.bkey GROUP BY cat`,
			false, "columnar:dims"},
		{`SELECT region, cat, SUM(x) FROM facts f
			JOIN bdim d ON f.b = d.bkey
			JOIN adim e ON f.a = e.akey GROUP BY region, cat`,
			false, "columnar:dims"},
		{`SELECT cat, SUM(x) FROM facts f JOIN bdim d ON f.b + 1 = d.bkey GROUP BY cat`,
			false, "rowpath:join:expr-key"},
		{`SELECT cat, SUM(bkey) FROM facts f JOIN bdim d ON f.b = d.bkey GROUP BY cat`,
			false, "rowpath:agg:dim-column"},
	} {
		if got := verdict(tc.sql, tc.rowPath); got != tc.want {
			t.Errorf("verdict(%q) = %q, want %q", tc.sql, got, tc.want)
		}
	}
}

// TestColumnarDimsFoldAllocs pins the dims-grouped columnar sweep to
// zero steady-state allocations: once the join memo has seen every
// distinct fact key combination, re-feeding the same rows resolves
// groups entirely through the word-code memos.
func TestColumnarDimsFoldAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	cat := columnarCatalog(20000, 71)
	for _, tc := range []struct {
		name string
		sql  string
	}{
		{"dim-key", `SELECT cat, SUM(x), AVG(x) FROM facts f
			JOIN bdim d ON f.b = d.bkey GROUP BY cat`},
		{"mixed-keys", `SELECT a, cat, SUM(x), AVG(x) FROM facts f
			JOIN bdim d ON f.b = d.bkey GROUP BY a, cat`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			q, err := plan.Compile(tc.sql, cat)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := New(q, cat, Options{Batches: 10, Trials: 100, Seed: 72, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			if _, err := eng.Step(); err != nil {
				t.Fatal(err)
			}
			r := eng.runners[len(eng.runners)-1]
			if got := r.colPl.verdict(); got != "columnar:dims" {
				t.Fatalf("plan verdict = %q, want columnar:dims", got)
			}
			ts := eng.tables["facts"]
			te := eng.triEnv()
			rows := ts.batches[1]
			base := ts.starts[1]
			const chunk = 512
			// Warm the full batch so the join memo holds every key combo
			// the alloc loop can encounter.
			r.feedBatchSerial(rows, base, ts, te, nil)
			sweeps := r.cs.sweeps
			if sweeps == 0 {
				t.Fatal("columnar dims path did not engage")
			}
			off := 0
			allocs := testing.AllocsPerRun(40, func() {
				if off+chunk > len(rows) {
					off = 0
				}
				r.feedBatchSerial(rows[off:off+chunk], base+off, ts, te, nil)
				off += chunk
			})
			if allocs != 0 {
				t.Fatalf("dims columnar fold allocates %.1f allocs/chunk, want 0", allocs)
			}
			if r.cs.sweeps == sweeps {
				t.Fatal("alloc loop never swept a segment")
			}
		})
	}
}

// columnarBenchEnv builds a warmed engine over the fold catalog and
// returns the pieces to drive feedBatchSerial by hand over aligned
// chunks of the second mini-batch.
func columnarBenchEnv(tb testing.TB, multiKey, sampledAll, profile bool) (*Engine, *blockRunner, *tableStream, *triEnv) {
	cat := foldCatalog(20000, 71)
	sql := `SELECT a, SUM(x), AVG(x) FROM facts GROUP BY a`
	if multiKey {
		sql = `SELECT a, b, SUM(x), AVG(x) FROM facts GROUP BY a, b`
	}
	q, err := plan.Compile(sql, cat)
	if err != nil {
		tb.Fatal(err)
	}
	opt := Options{Batches: 10, Trials: 100, Seed: 72, Parallelism: 1}
	if sampledAll {
		opt.BootstrapSampleCap = -1
	}
	if profile {
		opt.Profile = true
		opt.Tracer = NewTracer(0)
	}
	eng, err := New(q, cat, opt)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := eng.Step(); err != nil {
		tb.Fatal(err)
	}
	r := eng.runners[len(eng.runners)-1]
	if !r.colPl.ok {
		tb.Fatal("bench query must be columnar-eligible")
	}
	return eng, r, eng.tables["facts"], eng.triEnv()
}

// TestColumnarFoldAllocs pins the steady-state columnar fold to zero
// allocations per chunk (and therefore per tuple) after warmup, plain
// and profiled, for both subsample modes. It also asserts the columnar
// path actually engaged (segment sweeps advanced).
func TestColumnarFoldAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	for _, tc := range []struct {
		name       string
		multiKey   bool
		sampledAll bool
	}{
		{"single-key", false, false},
		{"single-key/sampled-all", false, true},
		{"multi-key/sampled-all", true, true},
	} {
		for _, mode := range []struct {
			name    string
			profile bool
		}{
			{"plain", false},
			{"profiled", true},
		} {
			t.Run(tc.name+"/"+mode.name, func(t *testing.T) {
				_, r, ts, te := columnarBenchEnv(t, tc.multiKey, tc.sampledAll, mode.profile)
				rows := ts.batches[1]
				base := ts.starts[1]
				const chunk = 512
				// Warm up: sizes scratch, kernel, memo, group entries.
				r.feedBatchSerial(rows[:chunk], base, ts, te, nil)
				sweeps := r.cs.sweeps
				if sweeps == 0 {
					t.Fatal("columnar path did not engage")
				}
				off := 0
				allocs := testing.AllocsPerRun(40, func() {
					if off+chunk > len(rows) {
						off = 0
					}
					r.feedBatchSerial(rows[off:off+chunk], base+off, ts, te, nil)
					off += chunk
				})
				if allocs != 0 {
					t.Fatalf("columnar fold allocates %.1f allocs/chunk, want 0", allocs)
				}
				if r.cs.sweeps == sweeps {
					t.Fatal("alloc loop never swept a segment")
				}
				if mode.profile && r.acc.ns[phaseFold] == 0 {
					t.Fatal("profiled run recorded no fold time")
				}
			})
		}
	}
}

// benchFoldColumnar measures the columnar fold in ns/row by feeding
// aligned chunks through feedBatchSerial; compare with RowPath variants
// of the same shape via scripts/benchdiff.sh.
func benchFoldColumnar(b *testing.B, multiKey, sampledAll bool) {
	_, r, ts, te := columnarBenchEnv(b, multiKey, sampledAll, false)
	rows := ts.batches[1]
	base := ts.starts[1]
	const chunk = 512
	r.feedBatchSerial(rows[:chunk], base, ts, te, nil)
	b.ReportAllocs()
	b.ResetTimer()
	off := 0
	for n := 0; n < b.N; n += chunk {
		if off+chunk > len(rows) {
			off = 0
		}
		r.feedBatchSerial(rows[off:off+chunk], base+off, ts, te, nil)
		off += chunk
	}
}

func BenchmarkFoldColumnarSingleKey(b *testing.B)        { benchFoldColumnar(b, false, false) }
func BenchmarkFoldColumnarSingleKeySampled(b *testing.B) { benchFoldColumnar(b, false, true) }
func BenchmarkFoldColumnarMultiKey(b *testing.B)         { benchFoldColumnar(b, true, false) }
func BenchmarkFoldColumnarMultiKeySampled(b *testing.B)  { benchFoldColumnar(b, true, true) }

// BenchmarkClassifyColumnar measures the vectorized predicate kernel in
// ns/row over whole segments (the WHERE of a typical filtered fold).
func BenchmarkClassifyColumnar(b *testing.B) {
	cat := foldCatalog(20000, 71)
	sql := `SELECT COUNT(x) FROM facts WHERE x < 50.0 AND b >= 4`
	q, err := plan.Compile(sql, cat)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := New(q, cat, Options{Batches: 10, Trials: 20, Seed: 72, Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	r := eng.runners[len(eng.runners)-1]
	tbl, _ := eng.cat.Get("facts")
	ct := tbl.Columnar()
	k := expr.CompileKernel(r.certainWhere, ct)
	if k == nil {
		b.Fatal("bench WHERE must compile")
	}
	out := make([]uint8, ct.SegSize)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; {
		for _, seg := range ct.Segs {
			k.EvalInto(out, seg, 0, seg.N)
			n += seg.N
			if n >= b.N {
				break
			}
		}
	}
}
