package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTracerRingBound(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 20; i++ {
		tr.Emit(Event{Kind: EvCommit, Block: i})
	}
	evs := tr.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want 8", len(evs))
	}
	if tr.Dropped() != 12 {
		t.Fatalf("Dropped = %d, want 12", tr.Dropped())
	}
	// Oldest-first, most recent retained: seq 12..19.
	for i, ev := range evs {
		if want := uint64(12 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: EvCommit})
	tr.setBatch(3)
	if tr.Events() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer must be inert")
	}
}

func TestTracerBatchStamp(t *testing.T) {
	tr := NewTracer(16)
	tr.setBatch(1)
	tr.Emit(Event{Kind: EvCommit})
	tr.setBatch(2)
	tr.Emit(Event{Kind: EvRangeFailure})
	evs := tr.Events()
	if evs[0].Batch != 1 || evs[1].Batch != 2 {
		t.Fatalf("batch stamps %d, %d, want 1, 2", evs[0].Batch, evs[1].Batch)
	}
	if evs[1].Ms < evs[0].Ms {
		t.Fatal("timestamps must be non-decreasing")
	}
}

func TestTracerWriteJSONL(t *testing.T) {
	tr := NewTracer(16)
	tr.setBatch(4)
	tr.Emit(Event{Kind: EvRangeFailure, Block: 1, Key: "k7", Point: 3.5, Lo: 1, Hi: 2, Boost: 2})
	tr.Emit(Event{Kind: EvFlip, Block: 1, Folded: 3, Dropped: 1, Kept: 5})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []Event
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, ev)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0].Kind != EvRangeFailure || lines[0].Key != "k7" || lines[0].Hi != 2 || lines[0].Batch != 4 {
		t.Fatalf("round-trip mismatch: %+v", lines[0])
	}
	if lines[1].Folded != 3 || lines[1].Kept != 5 {
		t.Fatalf("flip counts lost: %+v", lines[1])
	}
}

// TestEngineTraceEvents drives the recomputing nested workload and
// checks the engine narrates its decisions: range commits, a
// variation-range failure carrying the failing group key, uncertain
// flips, and the recompute trigger.
func TestEngineTraceEvents(t *testing.T) {
	_, tr := profiledQ17(t)
	counts := map[string]int{}
	var failure *Event
	for i, ev := range tr.Events() {
		counts[ev.Kind]++
		if ev.Kind == EvRangeFailure && failure == nil {
			failure = &tr.Events()[i]
		}
	}
	if counts[EvCommit] == 0 {
		t.Fatal("no commit events")
	}
	if counts[EvRangeFailure] == 0 {
		t.Fatal("no range-failure events on a workload that recomputes")
	}
	if counts[EvRecompute] == 0 {
		t.Fatal("no recompute events")
	}
	if counts[EvFlip] == 0 {
		t.Fatal("no uncertain-flip events")
	}
	if failure.Key == "" {
		t.Fatalf("range failure must carry the failing group key: %+v", *failure)
	}
	if failure.Lo == 0 && failure.Hi == 0 {
		t.Fatalf("range failure must carry the committed range: %+v", *failure)
	}
	if failure.Batch < 1 {
		t.Fatalf("events must be batch-stamped: %+v", *failure)
	}
}

func TestDebugFailuresConcurrentToggle(t *testing.T) {
	// The old plain-bool global raced when toggled while an engine ran;
	// now it is atomic. Exercised under -race in CI.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			DebugFailures(i%2 == 0)
		}
		close(done)
	}()
	for i := 0; i < 1000; i++ {
		_ = debugFailures.Load()
	}
	<-done
	DebugFailures(false)
}

func TestEventOmitsEmptyFields(t *testing.T) {
	b, err := json.Marshal(Event{Kind: EvRecompute, Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, absent := range []string{"key", "lo", "hi", "folded", "note", "block"} {
		if strings.Contains(s, `"`+absent+`"`) {
			t.Fatalf("empty field %q serialized: %s", absent, s)
		}
	}
}

// TestTracerConcurrentEmit hammers one ring from many goroutines (run
// under -race in CI): every retained event must be intact — a seq in
// range, stamped, no torn writes — and the drop accounting must add up.
func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(64)
	const (
		emitters = 8
		perG     = 500
	)
	var wg sync.WaitGroup
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tr.Emit(Event{Kind: EvCommit, Block: g, Kept: i})
			}
		}(g)
	}
	wg.Wait()
	evs := tr.Events()
	if len(evs) != 64 {
		t.Fatalf("retained %d events, want 64", len(evs))
	}
	if got := tr.Dropped(); got != emitters*perG-64 {
		t.Fatalf("Dropped = %d, want %d", got, emitters*perG-64)
	}
	seen := map[uint64]bool{}
	for _, ev := range evs {
		if ev.Seq >= emitters*perG {
			t.Fatalf("seq %d out of range", ev.Seq)
		}
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d retained", ev.Seq)
		}
		seen[ev.Seq] = true
		if ev.Kind != EvCommit || ev.Block < 0 || ev.Block >= emitters {
			t.Fatalf("torn event: %+v", ev)
		}
	}
}

// TestTracerMirrorHook: the mirror receives every emitted event exactly
// once with its stamped seq, even past ring wraparound — the contract
// the span-timeline instant correlation depends on.
func TestTracerMirrorHook(t *testing.T) {
	tr := NewTracer(4)
	var mu sync.Mutex
	var got []uint64
	tr.setMirror(func(ev Event) {
		mu.Lock()
		got = append(got, ev.Seq)
		mu.Unlock()
	})
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: EvCommit})
	}
	if len(got) != 10 {
		t.Fatalf("mirror saw %d events, want 10 (ring cap 4 must not bound it)", len(got))
	}
	for i, s := range got {
		if s != uint64(i) {
			t.Fatalf("mirror seq %d at position %d", s, i)
		}
	}
	// Nil-tracer setMirror must stay a no-op.
	var nilTr *Tracer
	nilTr.setMirror(func(Event) {})
	nilTr.Emit(Event{Kind: EvCommit})
}
