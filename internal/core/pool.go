package core

import (
	"runtime"
	"runtime/debug"
	"sync"

	"fluodb/internal/exec"
	"fluodb/internal/expr"
)

// The persistent worker pool. PF-OLA's lesson (and our own PR 2
// profiles) is that parallel OLA pays off only when estimation work is
// overlapped with execution instead of re-set-up at every barrier: the
// previous runtime re-spawned goroutines and re-allocated per-worker
// group tables for every mini-batch, and ran reclassification and
// bootstrap-weight generation serially on the controller. Here each
// engine owns P long-lived workers, each with a reusable shard context
// (group table reset — not reallocated — across batches, a refreshable
// classification environment, weight arena, uncertain buffer, joiner
// clone, phase accumulator). The controller feeds work descriptors over
// per-worker channels; shard k always runs on worker k and results are
// merged in worker order, so the pooled runtime is bit-identical to the
// per-batch-spawn path it replaces (and to a serial run, up to the same
// group-ordering caveats as before).
//
// Fault containment: a task panic must not take down the worker (its
// channel would deadlock every later barrier) or the process. Each task
// runs under recover; the panic value and stack are recorded on the
// task's group and surfaced to the controller at the barrier, which
// quarantines the affected shard scratch and redoes the work serially.
//
// Lifecycle: the pool is created lazily on first parallel work and
// stopped by Engine.Close. A finalizer backstops engines that are
// dropped without Close — workers hold no reference to the engine
// between tasks (contexts are delivered inside each task, and the task
// value is cleared before the next blocking receive), so an abandoned
// engine becomes collectable and its finalizer shuts the workers down.
// submit after stop returns ErrPoolStopped (never panics); callers fall
// back to the serial path.

// workerPanic is one recovered task panic, captured for the barrier.
type workerPanic struct {
	worker int
	val    any
	stack  []byte
}

// taskGroup is the submission barrier: a WaitGroup plus a panic
// collector. wait() drains and returns any panics recovered while the
// group's tasks ran.
type taskGroup struct {
	wg     sync.WaitGroup
	mu     sync.Mutex
	panics []workerPanic
}

func (g *taskGroup) record(worker int, val any, stack []byte) {
	g.mu.Lock()
	g.panics = append(g.panics, workerPanic{worker: worker, val: val, stack: stack})
	g.mu.Unlock()
}

// wait blocks for every submitted task and returns recovered panics
// (nil when all tasks completed cleanly).
func (g *taskGroup) wait() []workerPanic {
	g.wg.Wait()
	g.mu.Lock()
	p := g.panics
	g.panics = nil
	g.mu.Unlock()
	return p
}

// poolTask is one unit of work: fn runs on the worker's goroutine with
// the worker's reusable context; g is the submitter's barrier.
type poolTask struct {
	fn  func(*workerCtx)
	g   *taskGroup
	ctx *workerCtx
}

// workerShard is one worker's per-block reusable fold state. Everything
// here is private to the worker during a batch and drained by the
// controller at the merge barrier.
type workerShard struct {
	tab       *onlineTable
	uncertain []uncertainRow
	arena     weightArena
	joiner    *exec.Joiner
	folds     int64
	acc       phaseAcc
	cs        *colScratch
}

// workerCtx is one worker's cross-batch scratch. It deliberately holds
// no *Engine or *blockRunner: the pool must not keep an abandoned
// engine reachable, or the shutdown finalizer could never run.
type workerCtx struct {
	id     int
	te     *triEnv
	wbuf   []uint8
	shards []*workerShard
}

// shard returns (creating on first use) the worker's reusable fold
// state for runner r. A quarantined shard slot (nil after a panic) is
// simply rebuilt here on the next batch.
func (wc *workerCtx) shard(r *blockRunner) *workerShard {
	for len(wc.shards) <= r.idx {
		wc.shards = append(wc.shards, nil)
	}
	sh := wc.shards[r.idx]
	if sh == nil {
		sh = &workerShard{
			tab: newShardTable(r.eng.opt.Trials),
			// joiner shares the (read-only) dimension hash tables but its
			// one-row scratch is per-call state: each worker owns a clone.
			joiner: r.joiner.CloneForWorker(),
			cs:     &colScratch{},
		}
		sh.tab.configure(r.cltKinds)
		wc.shards[r.idx] = sh
	}
	return sh
}

// refresh returns the worker's classification environment, rebinding it
// to the engine's current parameter estimates. The environment is built
// once per worker; per-batch refresh only re-snapshots the scalar
// values/ranges (group and set lookups read the live bindings). Its
// expression-fact memos capture the engine's read-only cache maps, not
// the engine itself.
func (wc *workerCtx) refresh(e *Engine) *triEnv {
	if wc.te == nil {
		wc.te = e.bind.workerTriEnv()
		hp, hc := e.hpCache, e.colCache
		wc.te.hp = func(x expr.Expr) bool {
			if v, ok := hp[x]; ok {
				return v
			}
			return expr.HasParams(x)
		}
		wc.te.hc = func(x expr.Expr) bool {
			if v, ok := hc[x]; ok {
				return v
			}
			return hasCols(x)
		}
	}
	e.bind.refreshTriEnv(wc.te)
	return wc.te
}

// workerPool is a set of long-lived worker goroutines with per-worker
// task channels. Shard i of any batch is always submitted to worker i,
// which pins shard scratch to one goroutine and makes merge order (and
// therefore output) deterministic.
type workerPool struct {
	chans []chan poolTask
	ctxs  []*workerCtx
	mu    sync.RWMutex
	// stopped guards the channels: submit holds the read lock while
	// sending, stop flips the flag under the write lock before closing,
	// so a send on a closed channel is impossible.
	stopped bool
}

func newWorkerPool(size int) *workerPool {
	p := &workerPool{
		chans: make([]chan poolTask, size),
		ctxs:  make([]*workerCtx, size),
	}
	for i := range p.chans {
		// A small buffer lets the controller enqueue the whole batch's
		// shards (and async prefetch work) without blocking.
		ch := make(chan poolTask, 4)
		p.chans[i] = ch
		p.ctxs[i] = &workerCtx{id: i}
		go poolWorker(ch)
	}
	return p
}

// poolWorker is the worker loop. It intentionally references nothing
// but its channel between tasks (the task value is zeroed before the
// next blocking receive), so an idle pool keeps only its channels alive.
func poolWorker(ch chan poolTask) {
	for {
		t, ok := <-ch
		if !ok {
			return
		}
		runPoolTask(t)
		t = poolTask{}
		_ = t
	}
}

// runPoolTask executes one task under panic containment: a panicking fn
// is recorded on its group (with the stack for diagnostics) and the
// barrier is still released, so the controller observes the failure
// instead of deadlocking on a dead worker.
func runPoolTask(t poolTask) {
	defer func() {
		if v := recover(); v != nil {
			t.g.record(t.ctx.id, v, debug.Stack())
		}
		t.g.wg.Done()
	}()
	t.fn(t.ctx)
}

// size returns the number of workers.
func (p *workerPool) size() int { return len(p.chans) }

// submit schedules fn on worker w under the given barrier. After stop
// it returns ErrPoolStopped without touching the closed channels; the
// caller runs the work serially instead. Holding the read lock across
// the send cannot deadlock stop: workers drain buffered tasks before
// exiting, so a blocked send always completes.
func (p *workerPool) submit(w int, g *taskGroup, fn func(*workerCtx)) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.stopped {
		return ErrPoolStopped
	}
	g.wg.Add(1)
	p.chans[w] <- poolTask{fn: fn, g: g, ctx: p.ctxs[w]}
	return nil
}

// stop closes every worker channel. Idempotent; the caller must have
// drained all outstanding barriers first. submit after stop returns
// ErrPoolStopped.
func (p *workerPool) stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return
	}
	p.stopped = true
	for _, ch := range p.chans {
		close(ch)
	}
}

// quarantine discards every worker's shard scratch for runner idx after
// a contained panic: a partially-folded shard table must never be
// merged or recycled, so the slots are dropped for the collector and
// rebuilt clean on the next batch.
func (p *workerPool) quarantine(idx int) {
	for _, wc := range p.ctxs {
		if idx < len(wc.shards) {
			wc.shards[idx] = nil
		}
	}
}

// ensurePool returns the engine's worker pool, creating it (and
// arming the shutdown finalizer) on first use; nil after Close.
func (e *Engine) ensurePool() *workerPool {
	if e.closed {
		return nil
	}
	if e.pool == nil {
		e.pool = newWorkerPool(e.opt.Parallelism)
		runtime.SetFinalizer(e, (*Engine).Close)
	}
	return e.pool
}

// Close stops the engine's persistent worker pool and releases its
// scratch. It is idempotent and safe on engines that never went
// parallel. Further Steps fall back to serial execution. Engines
// dropped without Close are backstopped by a finalizer, but explicit
// Close releases the worker goroutines deterministically.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	// Pipelined prefetch work may still be in flight on the workers;
	// drain it before closing their channels.
	for _, pf := range e.prefetch {
		pf.drain()
	}
	if e.pool != nil {
		e.pool.stop()
		e.pool = nil
	}
	if e.coord != nil {
		e.coord.stop()
	}
	runtime.SetFinalizer(e, nil)
}
