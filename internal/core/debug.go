// Debug helpers: intentionally exported so reproduction scripts and
// benchmarks can introspect a running engine; not part of the stable
// query API.
package core

// DebugFailures toggles failure-path printf tracing (used by debugging
// mains); it is safe to call while an engine is running.
func DebugFailures(on bool) { debugFailures.Store(on) }

// DebugGroupRangeStatus counts the published range statuses of group
// param idx (debugging aid).
func (e *Engine) DebugGroupRangeStatus(idx int) (ok, unknown, null int) {
	if idx >= len(e.bind.groups) {
		return
	}
	for _, r := range e.bind.groups[idx].rng {
		switch r.status {
		case rsOK:
			ok++
		case rsNull:
			null++
		default:
			unknown++
		}
	}
	return
}
