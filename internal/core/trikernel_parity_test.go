package core

import (
	"fmt"
	"testing"

	"fluodb/internal/bootstrap"
	"fluodb/internal/colstore"
	"fluodb/internal/expr"
	"fluodb/internal/sqlparser"
	"fluodb/internal/types"
)

// The tri-state classification kernel (expr.CompileTriKernel) must be
// decision-identical to the engine's per-row evalTri for every row of
// every segment — including NULLs in measure and key columns, string
// columns on a comparison side, Kleene AND/OR/NOT combinations,
// param-free collapsed subtrees, and NULL/unknown injected parameter
// ranges. The property test below sweeps that matrix over generated
// catalogs with open-tail segments.

// triParityExprs enumerates the compilable predicate shapes. Columns:
// a string(0), b int-with-NULLs(1), x float-with-NULLs(2), s string(3).
func triParityExprs() []struct {
	name  string
	slots int
	e     expr.Expr
} {
	xcol := &expr.Col{Idx: 2, Name: "x", Typ: types.KindFloat}
	bcol := &expr.Col{Idx: 1, Name: "b", Typ: types.KindInt}
	scol := &expr.Col{Idx: 3, Name: "s", Typ: types.KindString}
	p0 := &expr.ScalarParam{Idx: 0}
	p1 := &expr.ScalarParam{Idx: 1}
	scaled := &expr.Binary{Op: sqlparser.OpMul,
		L: &expr.Const{V: types.NewFloat(0.9)}, R: p0}
	cmp := func(op sqlparser.BinaryOp, l, r expr.Expr) expr.Expr {
		return &expr.Binary{Op: op, L: l, R: r}
	}
	return []struct {
		name  string
		slots int
		e     expr.Expr
	}{
		{"x<0.9p", 1, cmp(sqlparser.OpLt, xcol, scaled)},
		{"x<=p", 1, cmp(sqlparser.OpLe, xcol, p0)},
		{"x>p", 1, cmp(sqlparser.OpGt, xcol, p0)},
		{"x>=p", 1, cmp(sqlparser.OpGe, xcol, p0)},
		{"x=p", 1, cmp(sqlparser.OpEq, xcol, p0)},
		{"x!=p", 1, cmp(sqlparser.OpNe, xcol, p0)},
		{"b>=p", 1, cmp(sqlparser.OpGe, bcol, p0)},
		// String column on a comparison side: non-NULL is range-unknown
		// (the row path's AsFloat failure), NULL is SQL false.
		{"s<p", 1, cmp(sqlparser.OpLt, scol, p0)},
		// Kleene combinations, including a two-slot conjunction.
		{"and", 2, &expr.Binary{Op: sqlparser.OpAnd,
			L: cmp(sqlparser.OpLt, xcol, p0), R: cmp(sqlparser.OpGt, bcol, p1)}},
		{"or-not", 2, &expr.Binary{Op: sqlparser.OpOr,
			L: &expr.Not{X: cmp(sqlparser.OpGe, xcol, p0)},
			R: cmp(sqlparser.OpEq, bcol, p1)}},
		// Param-free subtree collapsed through the certain kernel
		// (dictionary string equality), AND-ed with an interval compare.
		{"collapse-and", 1, &expr.Binary{Op: sqlparser.OpAnd,
			L: cmp(sqlparser.OpEq, scol, &expr.Const{V: types.NewString("alpha")}),
			R: cmp(sqlparser.OpLt, xcol, scaled)}},
		// Param-bearing node outside the compilable comparisons: the row
		// path answers triUnknown row-independently; the kernel must too.
		{"bare-param", 1, p0},
		{"param-arith", 1, &expr.Binary{Op: sqlparser.OpAdd, L: p0,
			R: &expr.Const{V: types.NewFloat(1)}}},
	}
}

// triParityRanges are the injected slot-range regimes, combined
// pairwise for two-slot expressions.
var triParityRanges = []struct {
	name string
	pr   paramRange
}{
	{"wide", paramRange{r: bootstrap.Range{Lo: 450, Hi: 520}, status: rsOK}},
	{"point", paramRange{r: bootstrap.Range{Lo: 500, Hi: 500}, status: rsOK}},
	{"low", paramRange{r: bootstrap.Range{Lo: 2, Hi: 9}, status: rsOK}},
	{"null", paramRange{status: rsNull}},
	{"unknown", paramRange{status: rsUnknown}},
}

// TestTriKernelParity pins kernel-vs-evalTri decision identity across
// the expression × range matrix, on a catalog sized so the last segment
// is an open (partially filled) tail.
func TestTriKernelParity(t *testing.T) {
	for _, seed := range []uint64{1, 9} {
		// 2000 and 3100 are not multiples of the segment size, so the
		// sweep always crosses an open-tail segment.
		cat := columnarCatalog(2000+int(seed)*100, seed)
		tbl, _ := cat.Get("facts")
		ct := tbl.Columnar()
		for _, tc := range triParityExprs() {
			k := expr.CompileTriKernel(tc.e, ct)
			if k == nil {
				t.Fatalf("%s: kernel should compile", tc.name)
			}
			for _, r0 := range triParityRanges {
				ranges := []paramRange{r0.pr, {r: bootstrap.Range{Lo: 4, Hi: 7}, status: rsOK}}
				rname := r0.name
				if tc.slots == 2 {
					// Two-slot expressions additionally sweep the second
					// slot through the regimes.
					for _, r1 := range triParityRanges {
						ranges2 := []paramRange{r0.pr, r1.pr}
						runTriParity(t, fmt.Sprintf("%s/%s+%s", tc.name, r0.name, r1.name),
							tc.e, k, ct, ranges2)
					}
					continue
				}
				runTriParity(t, tc.name+"/"+rname, tc.e, k, ct, ranges)
			}
		}
	}
}

func runTriParity(t *testing.T, name string, e expr.Expr, k *expr.TriKernel,
	ct *colstore.Table, ranges []paramRange) {
	t.Helper()
	te := &triEnv{pointCtx: &expr.Ctx{}, scalarRanges: ranges}
	for s, pe := range k.Slots() {
		pr := te.evalRange(pe, nil)
		k.SetRange(s, pr.r.Lo, pr.r.Hi, uint8(pr.status))
	}
	out := make([]uint8, ct.SegSize)
	for _, seg := range ct.Segs {
		k.EvalInto(out, seg, 0, seg.N)
		for i := 0; i < seg.N; i++ {
			want := te.evalTri(e, seg.Rows[i])
			if int(out[i]) != int(want) {
				t.Fatalf("%s: seg base %d row %d: kernel %d want %d (row %v)",
					name, seg.Base, i, out[i], want, seg.Rows[i])
			}
		}
	}
}

// TestTriKernelRefusals pins the shapes that must stay on the per-row
// path: a parameter side that reads the row cannot become an injected
// slot.
func TestTriKernelRefusals(t *testing.T) {
	cat := columnarCatalog(1024, 3)
	tbl, _ := cat.Get("facts")
	ct := tbl.Columnar()
	xcol := &expr.Col{Idx: 2, Name: "x", Typ: types.KindFloat}
	bcol := &expr.Col{Idx: 1, Name: "b", Typ: types.KindInt}
	rowParam := &expr.Binary{Op: sqlparser.OpAdd, L: &expr.ScalarParam{Idx: 0}, R: bcol}
	if k := expr.CompileTriKernel(&expr.Binary{Op: sqlparser.OpLt, L: xcol, R: rowParam}, ct); k != nil {
		t.Fatal("row-dependent param side must refuse compilation")
	}
	groupParam := &expr.Binary{Op: sqlparser.OpLt, L: xcol, R: &expr.GroupParam{Idx: 0}}
	if k := expr.CompileTriKernel(groupParam, ct); k != nil {
		t.Fatal("group param side must refuse compilation")
	}
}
