package core

import (
	"math"
	"testing"

	"fluodb/internal/exec"
	"fluodb/internal/plan"
	"fluodb/internal/types"
)

// TestBootstrapSubsampleDeterministic verifies that the Bernoulli
// subsample and the per-(tuple, trial) Poisson weights are pure
// functions of (seed, table, row index) — the property failure-recovery
// replay depends on.
func TestBootstrapSubsampleDeterministic(t *testing.T) {
	cat := synthCatalog(5000, 50, 31)
	build := func() *Engine {
		q, _ := plan.Compile(`SELECT AVG(play_time) FROM sessions`, cat)
		eng, err := New(q, cat, Options{Batches: 5, Trials: 10, Seed: 9, BootstrapSampleCap: 500})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	a, b := build(), build()
	ts1 := a.tables["sessions"]
	ts2 := b.tables["sessions"]
	if ts1.sampleP != ts2.sampleP || ts1.sampleP != 0.1 {
		t.Fatalf("sampleP = %v / %v, want 0.1", ts1.sampleP, ts2.sampleP)
	}
	nSampled := 0
	for i := 0; i < 5000; i++ {
		s1, s2 := a.sampled(ts1, i), b.sampled(ts2, i)
		if s1 != s2 {
			t.Fatal("sampling not deterministic")
		}
		if s1 {
			nSampled++
			w1, w2 := a.weightsFor(ts1, i), b.weightsFor(ts2, i)
			for j := range w1 {
				if w1[j] != w2[j] {
					t.Fatal("weights not deterministic")
				}
			}
		}
	}
	// Bernoulli(0.1) over 5000 rows: expect ~500 ± a generous margin.
	if nSampled < 380 || nSampled > 620 {
		t.Errorf("sampled = %d of 5000 at p=0.1", nSampled)
	}
}

func TestSampleCapAuto(t *testing.T) {
	cat := synthCatalog(5000, 50, 32)
	q, _ := plan.Compile(`SELECT AVG(play_time) FROM sessions`, cat)
	// auto: max(2000, 5000/(2*10)) = 2000 → p = 0.4
	eng, _ := New(q, cat, Options{Batches: 5, Trials: 10, Seed: 9})
	if got := eng.tables["sessions"].sampleP; got != 0.4 {
		t.Errorf("auto sampleP = %v", got)
	}
	// negative = unbounded
	q2, _ := plan.Compile(`SELECT AVG(play_time) FROM sessions`, cat)
	eng2, _ := New(q2, cat, Options{Batches: 5, Trials: 10, Seed: 9, BootstrapSampleCap: -1})
	if got := eng2.tables["sessions"].sampleP; got != 1 {
		t.Errorf("unbounded sampleP = %v", got)
	}
}

// TestSubsampledCIsStillCoverTruth verifies the m-out-of-n adjustment:
// with a 10% bootstrap subsample, the reported CIs must still cover the
// ground truth in most batches (they describe the full prefix, not the
// subsample).
func TestSubsampledCIsStillCoverTruth(t *testing.T) {
	cat := synthCatalog(10000, 50, 33)
	q, _ := plan.Compile(`SELECT AVG(play_time) FROM sessions`, cat)
	exact, _ := exec.Run(q, cat)
	truth, _ := exact.Rows[0][0].AsFloat()

	q2, _ := plan.Compile(`SELECT AVG(play_time) FROM sessions`, cat)
	eng, err := New(q2, cat, Options{Batches: 10, Trials: 100, Seed: 11, BootstrapSampleCap: 1000})
	if err != nil {
		t.Fatal(err)
	}
	contains := 0
	for !eng.Done() {
		s, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		if s.Rows[0][0].CI.Contains(truth) {
			contains++
		}
	}
	if contains < 8 {
		t.Errorf("subsampled CI covered truth in %d/10 batches", contains)
	}
}

// TestSubsampledWidthTracksFullWidth compares CI widths with and
// without subsampling: the adjusted widths should be within a small
// factor of the unbounded-bootstrap widths.
func TestSubsampledWidthTracksFullWidth(t *testing.T) {
	cat := synthCatalog(10000, 50, 34)
	width := func(cap int) float64 {
		q, _ := plan.Compile(`SELECT AVG(play_time) FROM sessions`, cat)
		eng, err := New(q, cat, Options{Batches: 4, Trials: 100, Seed: 12, BootstrapSampleCap: cap})
		if err != nil {
			t.Fatal(err)
		}
		s, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		return s.Rows[0][0].CI.Width()
	}
	full := width(-1)
	sub := width(1500)
	if full <= 0 || sub <= 0 {
		t.Fatalf("widths: full=%v sub=%v", full, sub)
	}
	ratio := sub / full
	if ratio < 0.3 || ratio > 3.0 {
		t.Errorf("subsampled width %.4g vs full %.4g (ratio %.2f) — adjustment off", sub, full, ratio)
	}
}

func TestSnapshotEvalBudgetThinsTrials(t *testing.T) {
	cat := synthCatalog(4000, 50, 35)
	sql := `SELECT country, COUNT(*) FROM sessions GROUP BY country`
	q, _ := plan.Compile(sql, cat)
	// 5 groups, budget 16 → effTrials clamps to the floor of 8
	eng, err := New(q, cat, Options{Batches: 4, Trials: 50, Seed: 13, SnapshotEvalBudget: 16})
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.Step()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range s.Rows {
		if !row[1].HasCI {
			t.Fatal("budgeted snapshot must still produce CIs")
		}
	}
	// Exactness at completion is unaffected by the budget.
	final, err := eng.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := exec.Run(q, cat)
	if len(final.Rows) != len(exact.Rows) {
		t.Fatalf("rows: %d vs %d", len(final.Rows), len(exact.Rows))
	}
}

// TestSubsampledNestedStillExact re-checks end-to-end exactness under
// aggressive subsampling for the nested query classes.
func TestSubsampledNestedStillExact(t *testing.T) {
	cat := synthCatalog(6000, 40, 36)
	queries := []string{
		`SELECT AVG(play_time) FROM sessions WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`,
		`SELECT SUM(extendedprice) FROM lineitem l WHERE quantity < (SELECT 0.5 * AVG(quantity) FROM lineitem i WHERE i.partkey = l.partkey)`,
		`SELECT orderkey, SUM(quantity) FROM lineitem WHERE orderkey IN (SELECT orderkey FROM lineitem GROUP BY orderkey HAVING SUM(quantity) > 150) GROUP BY orderkey`,
	}
	for _, sql := range queries {
		q, err := plan.Compile(sql, cat)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := exec.Run(q, cat)
		if err != nil {
			t.Fatal(err)
		}
		q2, _ := plan.Compile(sql, cat)
		eng, err := New(q2, cat, Options{Batches: 8, Trials: 25, Seed: 37, BootstrapSampleCap: 600})
		if err != nil {
			t.Fatal(err)
		}
		final, err := eng.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		got := final.ValueRows()
		if len(got) != len(exact.Rows) {
			t.Fatalf("%s: rows %d vs %d", sql, len(got), len(exact.Rows))
		}
		// compare multisets of rows via sorted key strings
		index := map[string]int{}
		for _, r := range exact.Rows {
			index[rowKey(r)]++
		}
		for _, r := range got {
			index[rowKey(r)]--
		}
		for k, v := range index {
			if v != 0 {
				t.Fatalf("%s: row multiset mismatch at %q", sql, k)
			}
		}
	}
}

func rowKey(r types.Row) string {
	cols := make([]int, len(r))
	vals := make(types.Row, len(r))
	for i := range r {
		cols[i] = i
		if f, ok := r[i].AsFloat(); ok {
			vals[i] = types.NewFloat(math.Round(f*1e6) / 1e6)
		} else {
			vals[i] = r[i]
		}
	}
	return vals.KeyString(cols)
}

func TestNoCommitFallbackStillExact(t *testing.T) {
	cat := synthCatalog(3000, 30, 38)
	sql := `SELECT AVG(play_time) FROM sessions WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`
	q, _ := plan.Compile(sql, cat)
	exact, _ := exec.Run(q, cat)
	q2, _ := plan.Compile(sql, cat)
	eng, err := New(q2, cat, Options{Batches: 6, Trials: 10, Seed: 39})
	if err != nil {
		t.Fatal(err)
	}
	// Force the guaranteed-termination path: with noCommit everything
	// stays uncertain, yet results remain exact at completion.
	eng.bind.noCommit = true
	final, err := eng.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := final.ValueRows()[0][0].AsFloat()
	want, _ := exact.Rows[0][0].AsFloat()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("noCommit final = %v, want %v", got, want)
	}
	// Under noCommit the cached set never drains (classification is
	// disabled) — correctness comes from snapshot-time evaluation.
	if final.UncertainRows == 0 {
		t.Error("noCommit mode should keep tuples uncertain (none classified)")
	}
}

// TestFullTablesReadUpfront exercises §2's control over which relations
// stream: with the inner relation marked full, the nested aggregate is
// exact from the first batch, so no tuples are ever uncertain.
func TestFullTablesReadUpfront(t *testing.T) {
	cat := synthCatalog(3000, 30, 41)
	sql := `SELECT AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`
	q, _ := plan.Compile(sql, cat)
	exact, _ := exec.Run(q, cat)

	q2, _ := plan.Compile(sql, cat)
	eng, err := New(q2, cat, Options{
		Batches: 6, Trials: 10, Seed: 42, FullTables: []string{"SESSIONS"},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.Step()
	if err != nil {
		t.Fatal(err)
	}
	// The whole table arrived in batch 1: answer already exact.
	if s.FractionProcessed != 1 {
		t.Fatalf("fraction after batch 1 = %v", s.FractionProcessed)
	}
	got, _ := s.Rows[0][0].Value.AsFloat()
	want, _ := exact.Rows[0][0].AsFloat()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("first-batch answer = %v, want exact %v", got, want)
	}
	if s.UncertainRows != 0 {
		t.Errorf("uncertain = %d with a fully-loaded table", s.UncertainRows)
	}
	// Remaining batches are empty no-ops.
	final, err := eng.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	got2, _ := final.Rows[0][0].Value.AsFloat()
	if math.Abs(got2-want) > 1e-9 {
		t.Errorf("final = %v", got2)
	}
}

// TestParallelMatchesSerial compares a 4-worker run to a serial run on
// the same data and seed: values must match exactly (group ordering may
// differ, so rows are compared keyed).
func TestParallelMatchesSerial(t *testing.T) {
	// 30000 rows over 2 batches → 15000-row batches, well above the
	// 2×2048 threshold, so the parallel path genuinely runs.
	cat := synthCatalog(30000, 40, 51)
	queries := []string{
		`SELECT AVG(play_time) FROM sessions WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`,
		`SELECT country, COUNT(*), SUM(play_time) FROM sessions GROUP BY country`,
		`SELECT SUM(extendedprice) FROM lineitem l WHERE quantity < (SELECT 0.6 * AVG(quantity) FROM lineitem i WHERE i.partkey = l.partkey)`,
	}
	for _, sql := range queries {
		run := func(par int) map[string]types.Row {
			q, err := plan.Compile(sql, cat)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := New(q, cat, Options{Batches: 2, Trials: 15, Seed: 52, Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			final, err := eng.Run(nil)
			if err != nil {
				t.Fatal(err)
			}
			out := map[string]types.Row{}
			for _, r := range final.ValueRows() {
				out[rowKey(r[:1])] = r
			}
			return out
		}
		serial, parallel := run(1), run(4)
		if len(serial) != len(parallel) {
			t.Fatalf("%s: rows %d vs %d", sql, len(serial), len(parallel))
		}
		for k, sr := range serial {
			pr, ok := parallel[k]
			if !ok {
				t.Fatalf("%s: group %v missing in parallel run", sql, sr)
			}
			for c := range sr {
				sf, sok := sr[c].AsFloat()
				pf, pok := pr[c].AsFloat()
				if sok != pok || (sok && math.Abs(sf-pf) > 1e-9*(1+math.Abs(sf))) {
					t.Fatalf("%s: col %d: serial %v vs parallel %v", sql, c, sr[c], pr[c])
				}
			}
		}
	}
}

// TestNonCLTGroupParamFallsBackToBootstrap uses a correlated MEDIAN
// subquery — not CLT-estimable — so classification must go through the
// bootstrap-replica evidence path, and still end exact.
func TestNonCLTGroupParamFallsBackToBootstrap(t *testing.T) {
	cat := synthCatalog(3000, 15, 53)
	sql := `SELECT COUNT(*) FROM lineitem l
		WHERE quantity < (SELECT MEDIAN(quantity) FROM lineitem i WHERE i.partkey = l.partkey)`
	q, _ := plan.Compile(sql, cat)
	exact, err := exec.Run(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	q2, _ := plan.Compile(sql, cat)
	eng, err := New(q2, cat, Options{Batches: 6, Trials: 20, Seed: 54, BootstrapSampleCap: -1})
	if err != nil {
		t.Fatal(err)
	}
	final, err := eng.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := final.ValueRows()[0][0].AsFloat()
	want, _ := exact.Rows[0][0].AsFloat()
	// MEDIAN is a t-digest sketch: the batch and online engines fold in
	// different orders and so disagree slightly on the inner medians,
	// moving a few boundary tuples. Allow a small relative tolerance.
	if math.Abs(got-want) > 0.005*want {
		t.Errorf("final = %v, want ≈%v (recomputes=%d)", got, want, final.Recomputes)
	}
}

// TestNonCLTSetHavingFallsBackToBootstrap uses MEDIAN in an IN-subquery
// HAVING — the set-block bootstrap-range fallback.
func TestNonCLTSetHavingFallsBackToBootstrap(t *testing.T) {
	cat := synthCatalog(2400, 12, 55)
	sql := `SELECT COUNT(*) FROM lineitem
		WHERE partkey IN (SELECT partkey FROM lineitem GROUP BY partkey HAVING MEDIAN(quantity) > 26)`
	q, _ := plan.Compile(sql, cat)
	exact, err := exec.Run(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	q2, _ := plan.Compile(sql, cat)
	eng, err := New(q2, cat, Options{Batches: 6, Trials: 20, Seed: 56, BootstrapSampleCap: -1})
	if err != nil {
		t.Fatal(err)
	}
	final, err := eng.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := final.ValueRows()[0][0].AsFloat()
	want, _ := exact.Rows[0][0].AsFloat()
	// MEDIAN-based membership: whole groups may flip on sketch noise.
	if math.Abs(got-want) > 0.02*want {
		t.Errorf("final = %v, want %v (recomputes=%d)", got, want, final.Recomputes)
	}
}

// TestConfidenceLevelAffectsWidth checks wider confidence → wider CI.
func TestConfidenceLevelAffectsWidth(t *testing.T) {
	cat := synthCatalog(5000, 20, 57)
	width := func(conf float64) float64 {
		q, _ := plan.Compile(`SELECT AVG(play_time) FROM sessions`, cat)
		eng, err := New(q, cat, Options{Batches: 5, Trials: 100, Seed: 58, Confidence: conf})
		if err != nil {
			t.Fatal(err)
		}
		s, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		return s.Rows[0][0].CI.Width()
	}
	w50, w99 := width(0.5), width(0.99)
	if w99 <= w50 {
		t.Errorf("99%% CI (%.4g) should be wider than 50%% CI (%.4g)", w99, w50)
	}
}
