package core

import (
	"fmt"
	"math"
	"testing"

	"fluodb/internal/bootstrap"
	"fluodb/internal/exec"
	"fluodb/internal/plan"
	"fluodb/internal/storage"
	"fluodb/internal/types"
)

// synthCatalog builds a deterministic synthetic catalog with a sessions
// fact table (n rows) and a lineitem fact table (n rows, nParts parts).
func synthCatalog(n, nParts int, seed uint64) *storage.Catalog {
	cat := storage.NewCatalog()
	rng := bootstrap.NewRNG(seed)

	s := storage.NewTable("sessions", types.NewSchema(
		"session_id", types.KindInt,
		"buffer_time", types.KindFloat,
		"play_time", types.KindFloat,
		"country", types.KindString,
	))
	countries := []string{"US", "DE", "FR", "BR", "IN"}
	for i := 0; i < n; i++ {
		buf := rng.Float64() * 100
		// play time negatively correlated with buffering + noise
		play := 800 - 5*buf + rng.Float64()*200
		_ = s.Append(types.Row{
			types.NewInt(int64(i)),
			types.NewFloat(buf),
			types.NewFloat(play),
			types.NewString(countries[rng.Intn(len(countries))]),
		})
	}
	cat.Put(s)

	li := storage.NewTable("lineitem", types.NewSchema(
		"orderkey", types.KindInt,
		"partkey", types.KindInt,
		"quantity", types.KindFloat,
		"extendedprice", types.KindFloat,
	))
	for i := 0; i < n; i++ {
		pk := rng.Intn(nParts)
		q := 1 + rng.Float64()*49
		_ = li.Append(types.Row{
			types.NewInt(int64(i / 4)), // ~4 lines per order
			types.NewInt(int64(pk)),
			types.NewFloat(q),
			types.NewFloat(q * (10 + rng.Float64()*90)),
		})
	}
	cat.Put(li)
	return cat
}

func onlineVsExact(t *testing.T, cat *storage.Catalog, sql string, opt Options) (*Snapshot, *exec.Result, *Engine) {
	t.Helper()
	q, err := plan.Compile(sql, cat)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	exact, err := exec.Run(q, cat)
	if err != nil {
		t.Fatalf("exact Run: %v", err)
	}
	// Fresh compile for the engine so param state is independent.
	q2, err := plan.Compile(sql, cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(q2, cat, opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	final, err := eng.Run(nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return final, exact, eng
}

// rowsEqual compares snapshot point rows with exact rows, keyed by the
// first nKey columns, within tolerance.
func rowsEqual(t *testing.T, got []types.Row, want []types.Row, nKey int, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row count: got %d, want %d\n got=%v\nwant=%v", len(got), len(want), got, want)
	}
	index := map[string]types.Row{}
	for _, w := range want {
		cols := make([]int, nKey)
		for i := range cols {
			cols[i] = i
		}
		index[w.KeyString(cols)] = w
	}
	for _, g := range got {
		cols := make([]int, nKey)
		for i := range cols {
			cols[i] = i
		}
		w, ok := index[g.KeyString(cols)]
		if !ok {
			t.Fatalf("unexpected group %v", g)
		}
		for c := nKey; c < len(g); c++ {
			gf, gok := g[c].AsFloat()
			wf, wok := w[c].AsFloat()
			if gok != wok {
				t.Fatalf("col %d: got %v, want %v", c, g[c], w[c])
			}
			if gok && math.Abs(gf-wf) > tol*(1+math.Abs(wf)) {
				t.Fatalf("col %d: got %v, want %v", c, gf, wf)
			}
		}
	}
}

var fastOpt = Options{Batches: 10, Trials: 30, Seed: 7}

func TestSBIFinalMatchesExact(t *testing.T) {
	cat := synthCatalog(3000, 50, 1)
	sql := `SELECT AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`
	final, exact, eng := onlineVsExact(t, cat, sql, fastOpt)
	rowsEqual(t, final.ValueRows(), exact.Rows, 0, 1e-9)
	if final.FractionProcessed != 1 {
		t.Errorf("fraction = %v", final.FractionProcessed)
	}
	if eng.Metrics().Batches != 10 {
		t.Errorf("batches = %d", eng.Metrics().Batches)
	}
}

func TestSBIIntermediateEstimatesConverge(t *testing.T) {
	cat := synthCatalog(4000, 50, 2)
	sql := `SELECT AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`
	q, _ := plan.Compile(sql, cat)
	exact, _ := exec.Run(q, cat)
	truth, _ := exact.Rows[0][0].AsFloat()

	q2, _ := plan.Compile(sql, cat)
	eng, err := New(q2, cat, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	var rsds []float64
	var errs []float64
	for !eng.Done() {
		s, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Rows) != 1 {
			t.Fatalf("batch %d rows = %d", s.Batch, len(s.Rows))
		}
		cell := s.Rows[0][0]
		if !cell.HasCI {
			t.Fatal("aggregate cell should have a CI")
		}
		got, _ := cell.Value.AsFloat()
		rsds = append(rsds, cell.RSD)
		errs = append(errs, math.Abs(got-truth)/math.Abs(truth))
	}
	// First estimate within 10% of truth (uniform random sample).
	if errs[0] > 0.10 {
		t.Errorf("first estimate error = %v", errs[0])
	}
	// RSD shrinks substantially from first to last batch.
	if rsds[len(rsds)-1] > rsds[0] {
		t.Errorf("RSD did not shrink: first %v, last %v", rsds[0], rsds[len(rsds)-1])
	}
	if errs[len(errs)-1] > 1e-9 {
		t.Errorf("final error = %v", errs[len(errs)-1])
	}
}

func TestUncertainSetSmallAndEmptiesAtEnd(t *testing.T) {
	cat := synthCatalog(4000, 50, 3)
	sql := `SELECT AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`
	q, _ := plan.Compile(sql, cat)
	eng, err := New(q, cat, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	maxU := 0
	for !eng.Done() {
		s, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		if s.UncertainRows > maxU {
			maxU = s.UncertainRows
		}
	}
	// §3.2/§5: uncertain sets are very small in practice — they hold the
	// tuples whose buffer_time is within the (shrinking) variation range
	// of the mean.
	if maxU > 4000/4 {
		t.Errorf("uncertain set too large: %d of 4000", maxU)
	}
	if maxU == 0 {
		t.Error("expected some uncertain tuples near the threshold")
	}
}

func TestGroupedRootFinalMatchesExact(t *testing.T) {
	cat := synthCatalog(3000, 50, 4)
	// C1-style: histogram of slow-buffering sessions
	sql := `SELECT FLOOR(play_time / 100), COUNT(*), AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)
		GROUP BY 1`
	final, exact, _ := onlineVsExact(t, cat, sql, fastOpt)
	rowsEqual(t, final.ValueRows(), exact.Rows, 1, 1e-9)
}

func TestQ17CorrelatedFinalMatchesExact(t *testing.T) {
	cat := synthCatalog(3000, 20, 5)
	sql := `SELECT SUM(extendedprice) / 7.0 FROM lineitem l
		WHERE quantity < (SELECT 0.5 * AVG(quantity) FROM lineitem i WHERE i.partkey = l.partkey)`
	final, exact, _ := onlineVsExact(t, cat, sql, fastOpt)
	rowsEqual(t, final.ValueRows(), exact.Rows, 0, 1e-9)
}

func TestQ18SetFinalMatchesExact(t *testing.T) {
	cat := synthCatalog(2000, 20, 6)
	// orders whose total quantity is large
	sql := `SELECT orderkey, SUM(quantity) FROM lineitem
		WHERE orderkey IN (SELECT orderkey FROM lineitem GROUP BY orderkey HAVING SUM(quantity) > 120)
		GROUP BY orderkey`
	final, exact, _ := onlineVsExact(t, cat, sql, fastOpt)
	rowsEqual(t, final.ValueRows(), exact.Rows, 1, 1e-9)
}

func TestQ11HavingFinalMatchesExact(t *testing.T) {
	cat := synthCatalog(2000, 10, 7)
	sql := `SELECT partkey, SUM(extendedprice) FROM lineitem GROUP BY partkey
		HAVING SUM(extendedprice) > (SELECT SUM(extendedprice) * 0.11 FROM lineitem)`
	final, exact, _ := onlineVsExact(t, cat, sql, fastOpt)
	rowsEqual(t, final.ValueRows(), exact.Rows, 1, 1e-9)
}

func TestTwoLevelNestingFinalMatchesExact(t *testing.T) {
	cat := synthCatalog(2500, 50, 8)
	sql := `SELECT AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) + STDDEV(buffer_time) FROM sessions
			WHERE play_time > (SELECT AVG(play_time) FROM sessions))`
	final, exact, _ := onlineVsExact(t, cat, sql, fastOpt)
	rowsEqual(t, final.ValueRows(), exact.Rows, 0, 1e-9)
}

func TestPlainAggregateNoNesting(t *testing.T) {
	cat := synthCatalog(2000, 50, 9)
	sql := `SELECT COUNT(*), SUM(play_time), AVG(play_time) FROM sessions WHERE country = 'US'`
	final, exact, eng := onlineVsExact(t, cat, sql, fastOpt)
	rowsEqual(t, final.ValueRows(), exact.Rows, 0, 1e-9)
	// A monotone query never caches uncertain tuples.
	if got := eng.UncertainRows(); got != 0 {
		t.Errorf("uncertain rows = %d, want 0", got)
	}
}

func TestExtensiveAggregateScaledEstimates(t *testing.T) {
	cat := synthCatalog(2000, 50, 10)
	sql := `SELECT COUNT(*) FROM sessions`
	q, _ := plan.Compile(sql, cat)
	eng, err := New(q, cat, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.Step()
	if err != nil {
		t.Fatal(err)
	}
	// After 1/10 of the data, the scaled COUNT estimate should be ~2000.
	got, _ := s.Rows[0][0].Value.AsFloat()
	if got != 2000 {
		t.Errorf("scaled count after first batch = %v, want 2000 (exact for COUNT(*))", got)
	}
}

func TestCIContainsTruthForPlainAvg(t *testing.T) {
	cat := synthCatalog(5000, 50, 11)
	sql := `SELECT AVG(play_time) FROM sessions`
	q, _ := plan.Compile(sql, cat)
	exact, _ := exec.Run(q, cat)
	truth, _ := exact.Rows[0][0].AsFloat()

	q2, _ := plan.Compile(sql, cat)
	eng, _ := New(q2, cat, Options{Batches: 10, Trials: 100, Seed: 12})
	contains := 0
	total := 0
	for !eng.Done() {
		s, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		total++
		if s.Rows[0][0].CI.Contains(truth) {
			contains++
		}
	}
	// 95% CIs should contain the truth in the vast majority of batches.
	if contains < total-2 {
		t.Errorf("CI contained truth in %d/%d batches", contains, total)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	sql := `SELECT AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`
	run := func() []float64 {
		cat := synthCatalog(2000, 50, 13)
		q, _ := plan.Compile(sql, cat)
		eng, _ := New(q, cat, Options{Batches: 8, Trials: 25, Seed: 99})
		var vals []float64
		for !eng.Done() {
			s, _ := eng.Step()
			v, _ := s.Rows[0][0].Value.AsFloat()
			vals = append(vals, v, s.Rows[0][0].CI.Lo, s.Rows[0][0].CI.Hi)
		}
		return vals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFailureRecoveryStillExact(t *testing.T) {
	cat := synthCatalog(3000, 50, 14)
	sql := `SELECT AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`
	// A tiny ε makes committed ranges fragile → recomputations happen.
	opt := Options{Batches: 20, Trials: 10, Seed: 15, EpsilonSigma: 0.05}
	final, exact, eng := onlineVsExact(t, cat, sql, opt)
	rowsEqual(t, final.ValueRows(), exact.Rows, 0, 1e-9)
	t.Logf("recomputes with tiny epsilon: %d", eng.Metrics().Recomputes)
}

func TestLargerEpsilonFewerRecomputes(t *testing.T) {
	sql := `SELECT AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`
	recomputes := func(eps float64) int {
		cat := synthCatalog(3000, 50, 16)
		q, _ := plan.Compile(sql, cat)
		eng, _ := New(q, cat, Options{Batches: 20, Trials: 10, Seed: 17, EpsilonSigma: eps})
		_, _ = eng.Run(nil)
		return eng.Metrics().Recomputes
	}
	small, large := recomputes(0.02), recomputes(4.0)
	if small < large {
		t.Errorf("recomputes: eps=0.02 → %d, eps=4 → %d; expected monotone trend", small, large)
	}
}

func TestOrderByLimitInSnapshots(t *testing.T) {
	cat := synthCatalog(2000, 50, 18)
	sql := `SELECT country, COUNT(*) AS c FROM sessions GROUP BY country ORDER BY c DESC LIMIT 3`
	q, _ := plan.Compile(sql, cat)
	eng, err := New(q, cat, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	final, err := eng.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Rows) != 3 {
		t.Fatalf("limit rows = %d", len(final.Rows))
	}
	c0, _ := final.Rows[0][1].Value.AsFloat()
	c1, _ := final.Rows[1][1].Value.AsFloat()
	if c0 < c1 {
		t.Error("descending order violated")
	}
}

func TestEarlyStopViaRunCallback(t *testing.T) {
	cat := synthCatalog(2000, 50, 19)
	sql := `SELECT AVG(play_time) FROM sessions`
	q, _ := plan.Compile(sql, cat)
	eng, _ := New(q, cat, fastOpt)
	steps := 0
	_, err := eng.Run(func(s *Snapshot) bool {
		steps++
		return steps < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if steps != 3 || eng.Batch() != 3 {
		t.Errorf("steps = %d, batch = %d", steps, eng.Batch())
	}
	// Step continues from where Run stopped.
	if _, err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	if eng.Batch() != 4 {
		t.Errorf("batch = %d", eng.Batch())
	}
}

func TestStepAfterDoneReturnsErrDone(t *testing.T) {
	cat := synthCatalog(100, 10, 20)
	q, _ := plan.Compile(`SELECT COUNT(*) FROM sessions`, cat)
	eng, _ := New(q, cat, Options{Batches: 2, Trials: 5, Seed: 1})
	_, _ = eng.Step()
	_, _ = eng.Step()
	if _, err := eng.Step(); err != ErrDone {
		t.Errorf("err = %v, want ErrDone", err)
	}
}

func TestProjectionQueryRejected(t *testing.T) {
	cat := synthCatalog(100, 10, 21)
	q, _ := plan.Compile(`SELECT session_id FROM sessions`, cat)
	if _, err := New(q, cat, fastOpt); err == nil {
		t.Error("projection-only query should be rejected for online execution")
	}
}

func TestSnapshotRSDAggregation(t *testing.T) {
	s := &Snapshot{Rows: [][]CellEstimate{
		{{HasCI: true, RSD: 0.1}, {HasCI: false}},
		{{HasCI: true, RSD: 0.3}},
	}}
	if got := s.RSD(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("RSD = %v", got)
	}
	empty := &Snapshot{}
	if empty.RSD() != 0 {
		t.Error("empty snapshot RSD")
	}
}

func TestDefaultsApplied(t *testing.T) {
	cat := synthCatalog(100, 10, 22)
	q, _ := plan.Compile(`SELECT COUNT(*) FROM sessions`, cat)
	eng, err := New(q, cat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := eng.Options()
	if o.Batches != 10 || o.Trials != 100 || o.Confidence != 0.95 || o.EpsilonSigma != 1.0 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestSelectListParamFinalMatchesExact(t *testing.T) {
	cat := synthCatalog(2000, 30, 23)
	sql := `SELECT AVG(play_time) - (SELECT AVG(buffer_time) FROM sessions) FROM sessions`
	final, exact, _ := onlineVsExact(t, cat, sql, fastOpt)
	rowsEqual(t, final.ValueRows(), exact.Rows, 0, 1e-9)
}

func TestHavingParamFinalMatchesExact(t *testing.T) {
	cat := synthCatalog(2500, 30, 24)
	sql := `SELECT country, AVG(play_time) FROM sessions GROUP BY country
		HAVING AVG(play_time) > (SELECT AVG(play_time) FROM sessions)`
	final, exact, _ := onlineVsExact(t, cat, sql, fastOpt)
	rowsEqual(t, final.ValueRows(), exact.Rows, 1, 1e-9)
}

// TestConcurrentEnginesShareCatalog runs several independent engines over
// one read-only catalog in parallel — the multi-user console scenario of
// the demo (§6). Run under -race this also proves the catalog is safe
// for concurrent readers.
func TestConcurrentEnginesShareCatalog(t *testing.T) {
	cat := synthCatalog(2000, 30, 25)
	sql := `SELECT AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`
	q, _ := plan.Compile(sql, cat)
	exact, _ := exec.Run(q, cat)
	want, _ := exact.Rows[0][0].AsFloat()

	const workers = 4
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			q, err := plan.Compile(sql, cat)
			if err != nil {
				errs <- err
				return
			}
			eng, err := New(q, cat, Options{Batches: 5, Trials: 10, Seed: uint64(w) + 1})
			if err != nil {
				errs <- err
				return
			}
			final, err := eng.Run(nil)
			if err != nil {
				errs <- err
				return
			}
			got, _ := final.ValueRows()[0][0].AsFloat()
			if math.Abs(got-want) > 1e-9 {
				errs <- fmtErrorf("worker %d: got %v want %v", w, got, want)
				return
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}

func fmtErrorf(format string, args ...interface{}) error {
	return fmt.Errorf(format, args...)
}

func TestSnapshotBlockStats(t *testing.T) {
	cat := synthCatalog(2000, 30, 26)
	sql := `SELECT AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`
	q, _ := plan.Compile(sql, cat)
	eng, _ := New(q, cat, Options{Batches: 4, Trials: 10, Seed: 27})
	s, err := eng.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Blocks) != 2 {
		t.Fatalf("blocks = %d", len(s.Blocks))
	}
	inner, root := s.Blocks[0], s.Blocks[1]
	if inner.Kind != "scalar" || root.Kind != "root" {
		t.Errorf("kinds = %s, %s", inner.Kind, root.Kind)
	}
	if inner.Uncertain != 0 {
		t.Errorf("inner uncertain = %d (no uncertain predicates)", inner.Uncertain)
	}
	if root.Uncertain == 0 {
		t.Error("root should cache borderline tuples")
	}
	if root.Uncertain+inner.Uncertain != s.UncertainRows {
		t.Error("block stats should sum to the total")
	}
	if inner.Table != "sessions" || root.Groups != 1 {
		t.Errorf("stats = %+v", s.Blocks)
	}
}

// TestOnlineJoinFinalMatchesExact streams the fact table through a
// dimension hash join (the paper's "stream the fact table, read
// dimension tables in entirety", §2).
func TestOnlineJoinFinalMatchesExact(t *testing.T) {
	cat := synthCatalog(2000, 10, 28)
	dim := storage.NewTable("parts", types.NewSchema(
		"partkey", types.KindInt, "brand", types.KindString))
	for pk := 0; pk < 10; pk++ {
		_ = dim.Append(types.Row{
			types.NewInt(int64(pk)),
			types.NewString([]string{"B1", "B2"}[pk%2]),
		})
	}
	cat.Put(dim)
	sql := `SELECT brand, SUM(extendedprice), COUNT(*) FROM lineitem l
		JOIN parts p ON l.partkey = p.partkey
		WHERE quantity > (SELECT AVG(quantity) FROM lineitem)
		GROUP BY brand`
	final, exact, _ := onlineVsExact(t, cat, sql, fastOpt)
	rowsEqual(t, final.ValueRows(), exact.Rows, 1, 1e-9)
}

// TestDeepNestingFinalMatchesExact exercises three levels of nested
// aggregate subqueries ("arbitrary nesting", §2).
func TestDeepNestingFinalMatchesExact(t *testing.T) {
	cat := synthCatalog(2500, 40, 29)
	sql := `SELECT COUNT(*), AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions
			WHERE play_time > (SELECT AVG(play_time) FROM sessions
				WHERE buffer_time < (SELECT AVG(buffer_time) FROM sessions)))`
	q, err := plan.Compile(sql, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4 (three nested levels + root)", len(q.Blocks))
	}
	final, exact, _ := onlineVsExact(t, cat, sql, fastOpt)
	rowsEqual(t, final.ValueRows(), exact.Rows, 0, 1e-9)
}

// TestMixedParamsInOnePredicate combines a scalar and a correlated param
// in one WHERE clause.
func TestMixedParamsInOnePredicate(t *testing.T) {
	cat := synthCatalog(2500, 20, 30)
	sql := `SELECT COUNT(*) FROM lineitem l
		WHERE quantity < (SELECT 0.8 * AVG(quantity) FROM lineitem i WHERE i.partkey = l.partkey)
		  AND extendedprice > (SELECT AVG(extendedprice) FROM lineitem)`
	final, exact, _ := onlineVsExact(t, cat, sql, fastOpt)
	rowsEqual(t, final.ValueRows(), exact.Rows, 0, 1e-9)
}

// TestNullGroupKeysOnline checks NULL grouping keys survive the online
// path identically to batch execution.
func TestNullGroupKeysOnline(t *testing.T) {
	cat := storage.NewCatalog()
	tab := storage.NewTable("t", types.NewSchema(
		"g", types.KindString, "v", types.KindFloat))
	for i := 0; i < 300; i++ {
		g := types.Value(types.NewString([]string{"a", "b"}[i%2]))
		if i%5 == 0 {
			g = types.Null
		}
		_ = tab.Append(types.Row{g, types.NewFloat(float64(i))})
	}
	cat.Put(tab)
	sql := `SELECT g, COUNT(*), AVG(v) FROM t GROUP BY g`
	final, exact, _ := onlineVsExact(t, cat, sql, Options{Batches: 5, Trials: 10, Seed: 71})
	rowsEqual(t, final.ValueRows(), exact.Rows, 1, 1e-9)
	if len(final.Rows) != 3 {
		t.Fatalf("groups = %d (a, b, NULL)", len(final.Rows))
	}
}

// TestMoreBatchesThanRows covers k > n (each batch may be empty).
func TestMoreBatchesThanRows(t *testing.T) {
	cat := storage.NewCatalog()
	tab := storage.NewTable("t", types.NewSchema("v", types.KindFloat))
	for i := 0; i < 7; i++ {
		_ = tab.Append(types.Row{types.NewFloat(float64(i))})
	}
	cat.Put(tab)
	q, _ := plan.Compile(`SELECT SUM(v), COUNT(*) FROM t`, cat)
	eng, err := New(q, cat, Options{Batches: 50, Trials: 5, Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	final, err := eng.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := final.Rows[0][0].Value.AsFloat(); got != 21 {
		t.Errorf("sum = %v", got)
	}
	if got, _ := final.Rows[0][1].Value.AsFloat(); got != 7 {
		t.Errorf("count = %v", got)
	}
	if final.FractionProcessed != 1 {
		t.Errorf("fraction = %v", final.FractionProcessed)
	}
}

// TestEmptyTableOnline covers the degenerate empty input.
func TestEmptyTableOnline(t *testing.T) {
	cat := storage.NewCatalog()
	cat.Put(storage.NewTable("t", types.NewSchema("v", types.KindFloat)))
	q, _ := plan.Compile(`SELECT COUNT(*), AVG(v) FROM t`, cat)
	eng, err := New(q, cat, Options{Batches: 4, Trials: 5, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	final, err := eng.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := final.Rows[0][0].Value.AsFloat(); got != 0 {
		t.Errorf("count = %v", got)
	}
	if !final.Rows[0][1].Value.IsNull() {
		t.Errorf("avg over empty = %v", final.Rows[0][1].Value)
	}
}

// TestSingleBatchIsExactImmediately covers k = 1 (degenerate online run).
func TestSingleBatchIsExactImmediately(t *testing.T) {
	cat := synthCatalog(500, 10, 74)
	sql := `SELECT AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`
	q, _ := plan.Compile(sql, cat)
	exact, _ := exec.Run(q, cat)
	q2, _ := plan.Compile(sql, cat)
	eng, err := New(q2, cat, Options{Batches: 1, Trials: 10, Seed: 75})
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.Step()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := s.Rows[0][0].Value.AsFloat()
	want, _ := exact.Rows[0][0].AsFloat()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("k=1 answer = %v, want %v", got, want)
	}
	if !eng.Done() {
		t.Error("should be done after the single batch")
	}
}

// TestRepeatedSubqueryCompilesTwice covers the same subquery SQL used in
// two predicates (two independent blocks, both broadcast).
func TestRepeatedSubquery(t *testing.T) {
	cat := synthCatalog(2000, 20, 76)
	sql := `SELECT COUNT(*) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)
		  AND play_time > (SELECT AVG(play_time) FROM sessions)`
	q, _ := plan.Compile(sql, cat)
	if len(q.ScalarBlocks) != 2 {
		t.Fatalf("scalar blocks = %d", len(q.ScalarBlocks))
	}
	final, exact, _ := onlineVsExact(t, cat, sql, fastOpt)
	rowsEqual(t, final.ValueRows(), exact.Rows, 0, 1e-9)
}

// TestParamInsideCaseClassifiesConservatively covers an uncertain
// predicate wrapped in CASE — the interval evaluator cannot bound it, so
// tuples stay uncertain (correct, just slower) and the final answer is
// exact.
func TestParamInsideCase(t *testing.T) {
	cat := synthCatalog(1500, 20, 77)
	sql := `SELECT COUNT(*) FROM sessions
		WHERE CASE WHEN buffer_time > (SELECT AVG(buffer_time) FROM sessions)
			THEN play_time > 500 ELSE play_time > 700 END`
	final, exact, eng := onlineVsExact(t, cat, sql, fastOpt)
	rowsEqual(t, final.ValueRows(), exact.Rows, 0, 1e-9)
	// the CASE makes most tuples uncertain mid-run; assert the machinery
	// noticed (peak > 0) without constraining how many
	if len(eng.Metrics().UncertainPerBatch) == 0 {
		t.Fatal("metrics missing")
	}
	peak := 0
	for _, u := range eng.Metrics().UncertainPerBatch {
		if u > peak {
			peak = u
		}
	}
	if peak == 0 {
		t.Error("CASE predicate should produce uncertain tuples")
	}
}

// TestBetweenWithParam covers BETWEEN whose bounds involve a nested
// aggregate (rewritten into two comparisons, one uncertain).
func TestBetweenWithParam(t *testing.T) {
	cat := synthCatalog(2000, 20, 78)
	sql := `SELECT AVG(play_time) FROM sessions
		WHERE buffer_time BETWEEN 10 AND (SELECT AVG(buffer_time) FROM sessions)`
	final, exact, _ := onlineVsExact(t, cat, sql, fastOpt)
	rowsEqual(t, final.ValueRows(), exact.Rows, 0, 1e-9)
}

// TestNotInSubqueryOnline covers negated set membership online.
func TestNotInSubqueryOnline(t *testing.T) {
	cat := synthCatalog(2000, 20, 79)
	sql := `SELECT COUNT(*) FROM lineitem
		WHERE orderkey NOT IN (SELECT orderkey FROM lineitem GROUP BY orderkey HAVING SUM(quantity) > 150)`
	final, exact, _ := onlineVsExact(t, cat, sql, fastOpt)
	rowsEqual(t, final.ValueRows(), exact.Rows, 0, 1e-9)
}

// TestOrPredicateWithParamOnline covers disjunctions mixing certain and
// uncertain terms (the whole OR becomes one uncertain conjunct).
func TestOrPredicateWithParamOnline(t *testing.T) {
	cat := synthCatalog(2000, 20, 80)
	sql := `SELECT COUNT(*) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions) OR play_time > 900`
	final, exact, _ := onlineVsExact(t, cat, sql, fastOpt)
	rowsEqual(t, final.ValueRows(), exact.Rows, 0, 1e-9)
}
