package bootstrap

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministicAndDistinct(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(1)
	c := NewRNG(2)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	diff := false
	a = NewRNG(1)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGZeroSeedOK(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := NewRNG(4)
	n := 100000
	var sum float64
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		buckets[int(f*10)]++
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v", mean)
	}
	for i, b := range buckets {
		if math.Abs(float64(b)-float64(n)/10) > float64(n)/50 {
			t.Errorf("bucket %d count = %d", i, b)
		}
	}
}

func TestIntn(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestForkIndependence(t *testing.T) {
	r := NewRNG(6)
	f := r.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == f.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("forked stream correlates: %d matches", same)
	}
}

func TestPoisson1Moments(t *testing.T) {
	r := NewRNG(7)
	n := 200000
	var sum, sumsq float64
	counts := map[int]int{}
	for i := 0; i < n; i++ {
		k := r.Poisson1()
		sum += float64(k)
		sumsq += float64(k * k)
		counts[k]++
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("Poisson(1) mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Poisson(1) variance = %v", variance)
	}
	// P(0) = e^-1 ≈ 0.3679
	p0 := float64(counts[0]) / float64(n)
	if math.Abs(p0-math.Exp(-1)) > 0.01 {
		t.Errorf("P(0) = %v", p0)
	}
	if counts[8] > n/1000 {
		t.Errorf("tail weight too heavy: %d", counts[8])
	}
}

func TestMeanStdDevRSD(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("mean = %v", Mean(xs))
	}
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(StdDev(xs)-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", StdDev(xs), want)
	}
	if math.Abs(RSD(xs)-want/5) > 1e-12 {
		t.Errorf("rsd = %v", RSD(xs))
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate inputs")
	}
	if RSD([]float64{0, 0}) != 0 {
		t.Error("RSD of zeros should be 0")
	}
	if !math.IsInf(RSD([]float64{-1, 1}), 1) {
		t.Error("RSD with zero mean should be +Inf")
	}
}

func TestPercentileCI(t *testing.T) {
	// replicas 1..100: the 95% CI should be ≈ [3.5, 97.5]
	var reps []float64
	for i := 1; i <= 100; i++ {
		reps = append(reps, float64(i))
	}
	iv := PercentileCI(reps, 0.95)
	if iv.Lo < 1 || iv.Lo > 6 || iv.Hi < 95 || iv.Hi > 100 {
		t.Errorf("CI = %+v", iv)
	}
	if !iv.Contains(50) || iv.Contains(200) {
		t.Error("Contains misbehaves")
	}
	if iv.Width() <= 0 {
		t.Error("Width")
	}
	// invalid confidence falls back to 0.95
	iv2 := PercentileCI(reps, 42)
	if math.Abs(iv2.Lo-iv.Lo) > 1e-9 {
		t.Error("confidence fallback")
	}
	if got := PercentileCI(nil, 0.95); got.Lo != 0 || got.Hi != 0 {
		t.Error("empty input CI")
	}
	one := PercentileCI([]float64{7}, 0.95)
	if one.Lo != 7 || one.Hi != 7 {
		t.Errorf("single replica CI = %+v", one)
	}
}

func TestPercentileCICoverageQuick(t *testing.T) {
	// Property: the CI lies within [min, max] of the replicas and the
	// interval is ordered.
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		reps := make([]float64, 50)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range reps {
			reps[i] = r.Float64()*100 - 50
			lo = math.Min(lo, reps[i])
			hi = math.Max(hi, reps[i])
		}
		iv := PercentileCI(reps, 0.9)
		return iv.Lo <= iv.Hi && iv.Lo >= lo-1e-9 && iv.Hi <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVariationRange(t *testing.T) {
	r := VariationRange(37, []float64{35, 39, 36}, 1)
	if r.Lo != 34 || r.Hi != 40 {
		t.Errorf("range = %+v", r)
	}
	// point estimate outside replicas still covered
	r2 := VariationRange(50, []float64{35, 39}, 0)
	if !r2.Contains(50) {
		t.Error("point estimate must be inside its own range")
	}
	if !r.Contains(34) || !r.Contains(40) || r.Contains(41) {
		t.Error("Contains bounds")
	}
}

func TestRangeOverlaps(t *testing.T) {
	a := Range{Lo: 1, Hi: 5}
	cases := []struct {
		b    Range
		want bool
	}{
		{Range{6, 9}, false},
		{Range{5, 9}, true}, // touching counts as overlap (conservative)
		{Range{-3, 0}, false},
		{Range{2, 3}, true},
		{Range{0, 10}, true},
		{Point(3), true},
		{Point(5.5), false},
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("Overlaps(%+v, %+v) = %v", a, c.b, got)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("Overlaps not symmetric for %+v", c.b)
		}
	}
}

func TestRangeOverlapSymmetricQuick(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) || math.IsNaN(d) {
			return true
		}
		r1 := Range{Lo: math.Min(a, b), Hi: math.Max(a, b)}
		r2 := Range{Lo: math.Min(c, d), Hi: math.Max(c, d)}
		return r1.Overlaps(r2) == r2.Overlaps(r1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointRange(t *testing.T) {
	p := Point(3)
	if p.Lo != 3 || p.Hi != 3 || !p.Contains(3) || p.Contains(3.0001) {
		t.Errorf("Point = %+v", p)
	}
}

func BenchmarkPoissonAt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = PoissonAt(uint64(i))
	}
}

func BenchmarkPercentileCI(b *testing.B) {
	r := NewRNG(1)
	reps := make([]float64, 100)
	for i := range reps {
		reps[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PercentileCI(reps, 0.95)
	}
}

func TestMix64AndPoissonAtDeterministic(t *testing.T) {
	if Mix64(42) != Mix64(42) {
		t.Fatal("Mix64 not deterministic")
	}
	if Mix64(42) == Mix64(43) {
		t.Error("Mix64 collision on adjacent inputs")
	}
	// counter-based Poisson matches the distribution
	n := 100000
	var sum float64
	for i := 0; i < n; i++ {
		k := PoissonAt(uint64(i))
		if PoissonAt(uint64(i)) != k {
			t.Fatal("PoissonAt not deterministic")
		}
		sum += float64(k)
	}
	if mean := sum / float64(n); math.Abs(mean-1) > 0.02 {
		t.Errorf("PoissonAt mean = %v", mean)
	}
}
