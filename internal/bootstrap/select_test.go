package bootstrap

import (
	"math"
	"sort"
	"testing"
)

// referenceCI is the pre-quickselect implementation: full sort, then
// interpolated quantiles. PercentileCIInPlace promises bit-identical
// intervals to this.
func referenceCI(replicas []float64, confidence float64) Interval {
	if len(replicas) == 0 {
		return Interval{}
	}
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	s := append([]float64(nil), replicas...)
	sort.Float64s(s)
	alpha := (1 - confidence) / 2
	return Interval{Lo: quantileSorted(s, alpha), Hi: quantileSorted(s, 1-alpha)}
}

func bitsEq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// ciEq compares interval endpoints by numeric equality: selection may
// place -0.0/0.0 ties at different positions than the sort (they are
// unordered under <), so endpoints can differ in zero sign while being
// equal under ==, which is the equality every consumer uses.
func ciEq(a, b float64) bool {
	return a == b || bitsEq(a, b)
}

// TestPercentileCISelectMatchesSort pins the quickselect fast path to
// the sort reference across sizes straddling the n >= 32 cutoff,
// duplicate-heavy and signed-zero inputs, and a spread of confidence
// levels.
func TestPercentileCISelectMatchesSort(t *testing.T) {
	rng := NewRNG(20150531)
	confs := []float64{0.5, 0.8, 0.9, 0.95, 0.99}
	for trial := 0; trial < 5000; trial++ {
		n := 1 + rng.Intn(300)
		xs := make([]float64, n)
		mode := rng.Intn(4)
		for i := range xs {
			switch mode {
			case 0: // continuous
				xs[i] = rng.Float64()*2000 - 1000
			case 1: // heavy ties
				xs[i] = float64(rng.Intn(8))
			case 2: // signed zeros and ties
				xs[i] = []float64{0.0, math.Copysign(0, -1), 1, -1}[rng.Intn(4)]
			default: // mixed magnitudes
				xs[i] = math.Ldexp(rng.Float64()-0.5, rng.Intn(40)-20)
			}
		}
		conf := confs[rng.Intn(len(confs))]
		want := referenceCI(xs, conf)
		got := PercentileCIInPlace(append([]float64(nil), xs...), conf)
		if !ciEq(got.Lo, want.Lo) || !ciEq(got.Hi, want.Hi) {
			t.Fatalf("trial %d (n=%d conf=%v mode=%d): select %+v vs sort %+v",
				trial, n, conf, mode, got, want)
		}
	}
}

// TestPercentileCINaNFallsBackToSort pins the NaN escape hatch: inputs
// with NaN take the legacy full-sort path, so behavior is unchanged.
func TestPercentileCINaNFallsBackToSort(t *testing.T) {
	rng := NewRNG(7)
	for trial := 0; trial < 200; trial++ {
		n := 32 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		xs[rng.Intn(n)] = math.NaN()
		want := referenceCI(xs, 0.95)
		got := PercentileCIInPlace(append([]float64(nil), xs...), 0.95)
		// sort.Float64s and the reference sort NaNs identically, so the
		// intervals must match bitwise (NaN compares via bits).
		if !bitsEq(got.Lo, want.Lo) || !bitsEq(got.Hi, want.Hi) {
			t.Fatalf("trial %d: select %+v vs sort %+v", trial, got, want)
		}
	}
}

// TestSelectFloatPlacesOrderStatistic checks the quickselect invariant
// directly: s[k] is the k-th smallest, with a <=/>= partition around it.
func TestSelectFloatPlacesOrderStatistic(t *testing.T) {
	rng := NewRNG(99)
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(20))
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		k := rng.Intn(n)
		s := append([]float64(nil), xs...)
		selectFloat(s, k)
		if !ciEq(s[k], sorted[k]) {
			t.Fatalf("trial %d: s[%d]=%v want %v", trial, k, s[k], sorted[k])
		}
		for i := 0; i < k; i++ {
			if s[i] > s[k] {
				t.Fatalf("trial %d: s[%d]=%v > s[%d]=%v", trial, i, s[i], k, s[k])
			}
		}
		for i := k + 1; i < n; i++ {
			if s[i] < s[k] {
				t.Fatalf("trial %d: s[%d]=%v < s[%d]=%v", trial, i, s[i], k, s[k])
			}
		}
	}
}
