// Package bootstrap implements the statistics layer of FluoDB: a fast
// deterministic RNG, Poisson(1) multiplicities for poissonized bootstrap
// resampling (the BlinkDB-style estimator the paper builds on, §2.2),
// percentile confidence intervals, relative standard deviation, and the
// variation ranges R(u) = [min(û)−ε, max(û)+ε] that drive G-OLA's
// uncertain/deterministic tuple classification (§3.2).
package bootstrap

import (
	"math"
	"sort"
)

// RNG is a small, fast xorshift128+ generator. It is deterministic for a
// given seed, which makes every experiment in this repository exactly
// reproducible.
type RNG struct {
	s0, s1 uint64
}

// NewRNG seeds a generator. Seed 0 is remapped to a fixed constant.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	// splitmix64 to fill the state from the seed
	r := &RNG{}
	z := seed
	next := func() uint64 {
		z += 0x9E3779B97F4A7C15
		x := z
		x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
		x = (x ^ (x >> 27)) * 0x94D049BB133111EB
		return x ^ (x >> 31)
	}
	r.s0 = next()
	r.s1 = next()
	return r
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	r.s1 = x ^ y ^ (x >> 17) ^ (y >> 26)
	return r.s1 + y
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics for n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("bootstrap: Intn requires n > 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Fork derives an independent generator (for per-trial or per-worker
// streams) without sharing state.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xD1B54A32D192ED03)
}

// poisson1Thresholds holds cumulative P(X<=k) for X ~ Poisson(1), scaled
// to 64-bit fixed point, so a multiplicity costs one RNG draw plus a tiny
// scan. P(X<=7) > 1 - 1e-7; the tail falls through to k=8.
var poisson1Thresholds = func() [8]uint64 {
	var out [8]uint64
	p := math.Exp(-1)
	cum := 0.0
	fact := 1.0
	for k := 0; k <= 7; k++ {
		if k > 0 {
			fact *= float64(k)
		}
		cum += p / fact
		c := cum
		if c > 1 {
			c = 1
		}
		out[k] = uint64(c * float64(math.MaxUint64))
	}
	return out
}()

// Poisson1 draws a Poisson(1)-distributed multiplicity.
func (r *RNG) Poisson1() int {
	return poissonFromBits(r.Uint64())
}

// poisson1Lut maps the top 8 bits of a draw to its multiplicity when
// every draw in that bucket resolves to the same k (all but the ~8
// buckets a threshold falls inside; those hold 0xFF and take the scan).
// One predictable L1 load replaces a data-dependent compare chain,
// which the weight-generation loop hits Trials times per sampled tuple.
var poisson1Lut = func() [256]uint8 {
	var lut [256]uint8
	for b := range lut {
		lo := uint64(b) << 56
		hi := lo | (1<<56 - 1)
		if kLo, kHi := poissonScan(lo), poissonScan(hi); kLo == kHi {
			lut[b] = uint8(kLo)
		} else {
			lut[b] = 0xFF
		}
	}
	return lut
}()

// poissonFromBits inverts the Poisson(1) CDF for one 64-bit draw.
func poissonFromBits(u uint64) int {
	if k := poisson1Lut[u>>56]; k != 0xFF {
		return int(k)
	}
	return poissonScan(u)
}

func poissonScan(u uint64) int {
	for k, th := range poisson1Thresholds {
		if u <= th {
			return k
		}
	}
	return len(poisson1Thresholds)
}

// Mix64 is a splitmix64-style finalizer: a counter-based hash usable as
// a stateless RNG. Identical inputs always produce identical outputs,
// which G-OLA's failure-recovery replay relies on to regenerate the
// exact per-(tuple, trial) bootstrap multiplicities.
func Mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// PoissonAt derives the Poisson(1) multiplicity for a given counter key
// (deterministic; see Mix64).
func PoissonAt(key uint64) int {
	return poissonFromBits(Mix64(key))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for n < 2).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// RSD is the relative standard deviation stddev/|mean| (the y-axis of
// Figure 3(a)); it returns +Inf when the mean is zero but spread is not,
// and 0 when both are zero.
func RSD(xs []float64) float64 {
	m := Mean(xs)
	s := StdDev(xs)
	if m == 0 {
		if s == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return s / math.Abs(m)
}

// Interval is a confidence interval.
type Interval struct {
	Lo, Hi float64
}

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether x lies in [Lo, Hi].
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// PercentileCI computes a percentile-method bootstrap confidence interval
// at the given confidence level (e.g. 0.95) from replica estimates. The
// input slice is not modified. For empty input it returns a degenerate
// zero interval.
func PercentileCI(replicas []float64, confidence float64) Interval {
	if len(replicas) == 0 {
		return Interval{}
	}
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	s := append([]float64(nil), replicas...)
	return PercentileCIInPlace(s, confidence)
}

// PercentileCIInPlace is PercentileCI without the defensive copy: it
// reorders the caller's slice in place. For reusable scratch buffers on
// per-snapshot hot paths.
//
// The interval only needs four order statistics (the two quantile
// positions and their interpolation neighbors), so instead of fully
// sorting it quickselects them — O(n) instead of O(n log n), which is
// the dominant per-group snapshot cost with many groups. The selected
// values are the exact order statistics a full sort would place at
// those positions, so the interval equals the sorted computation (bit
// for bit, except that -0.0/0.0 ties — unordered under < — may land in
// either position, a difference invisible to ==); inputs containing
// NaN (no total order) fall back to the sort so legacy behavior is
// preserved exactly.
func PercentileCIInPlace(replicas []float64, confidence float64) Interval {
	if len(replicas) == 0 {
		return Interval{}
	}
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	n := len(replicas)
	alpha := (1 - confidence) / 2
	if n >= 32 && !hasNaN(replicas) {
		// The same floor arithmetic as quantileSorted: the interval reads
		// s[iLo], s[iLo+1], s[iHi] and s[iHi+1].
		iLo := int(math.Floor(alpha * float64(n-1)))
		iHi := int(math.Floor((1 - alpha) * float64(n-1)))
		if iLo+2 <= iHi && iHi+1 < n {
			// Both quantiles sit near the extremes at the usual confidence
			// levels (a 95% interval on n replicas reads ranks ~n/40 from
			// each end), so a bounded scan keeping the kL smallest and kH
			// largest values beats a general selection: one pass, and the
			// running bound rejects almost every element with one compare.
			kL, kH := iLo+2, n-iHi
			if kL+kH <= n/2 && kL <= 64 && kH <= 64 {
				var lows, highs [64]float64
				tailExtremes(replicas, lows[:kL], highs[:kH])
				pLo := alpha * float64(n-1)
				pHi := (1 - alpha) * float64(n-1)
				lo := interpPair(lows[iLo], lows[iLo+1], pLo, iLo)
				hi := interpPair(highs[kH-1], highs[kH-2], pHi, iHi)
				return Interval{Lo: lo, Hi: hi}
			}
			selectFloat(replicas, iLo)
			selectFloat(replicas[iLo+1:], 0)
			selectFloat(replicas[iLo+2:], iHi-(iLo+2))
			selectFloat(replicas[iHi+1:], 0)
			lo := quantileSorted(replicas, alpha)
			hi := quantileSorted(replicas, 1-alpha)
			return Interval{Lo: lo, Hi: hi}
		}
	}
	sort.Float64s(replicas)
	lo := quantileSorted(replicas, alpha)
	hi := quantileSorted(replicas, 1-alpha)
	return Interval{Lo: lo, Hi: hi}
}

// tailExtremes fills lows with the len(lows) smallest elements of s in
// ascending order and highs with the len(highs) largest in descending
// order (so highs[k-1] is the k-th largest). One pass; each element is
// usually rejected by a single compare against the current bound.
// NaN-free input required.
func tailExtremes(s []float64, lows, highs []float64) {
	kL, kH := len(lows), len(highs)
	// Seed from the prefix: the first max(kL, kH) elements initialize
	// both bounds via insertion.
	nl, nh := 0, 0
	for _, x := range s {
		if nl < kL {
			j := nl
			for j > 0 && lows[j-1] > x {
				lows[j] = lows[j-1]
				j--
			}
			lows[j] = x
			nl++
		} else if x < lows[kL-1] {
			j := kL - 1
			for j > 0 && lows[j-1] > x {
				lows[j] = lows[j-1]
				j--
			}
			lows[j] = x
		}
		if nh < kH {
			j := nh
			for j > 0 && highs[j-1] < x {
				highs[j] = highs[j-1]
				j--
			}
			highs[j] = x
			nh++
		} else if x > highs[kH-1] {
			j := kH - 1
			for j > 0 && highs[j-1] < x {
				highs[j] = highs[j-1]
				j--
			}
			highs[j] = x
		}
	}
}

// interpPair is quantileSorted's interpolation given the two order
// statistics s[i] and s[i+1] directly (pos = q·(n-1), i = floor(pos)):
// the identical expression, so results match bit for bit.
func interpPair(a, b, pos float64, i int) float64 {
	frac := pos - float64(i)
	return a*(1-frac) + b*frac
}

// hasNaN reports whether any element is NaN (which has no total order,
// so selection and sorting could disagree on placement).
func hasNaN(s []float64) bool {
	for _, x := range s {
		if x != x {
			return true
		}
	}
	return false
}

// selectFloat partially orders s so that s[k] holds the k-th smallest
// element, everything before it is <= s[k] and everything after is
// >= s[k] (the classic Hoare quickselect with a median-of-three pivot).
// NaN-free input required.
func selectFloat(s []float64, k int) {
	lo, hi := 0, len(s)-1
	for hi-lo >= 16 {
		mid := lo + (hi-lo)/2
		pv := median3(s[lo], s[mid], s[hi])
		i, j := lo, hi
		for i <= j {
			for s[i] < pv {
				i++
			}
			for s[j] > pv {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return // j < k < i: s[k] already equals the pivot value
		}
	}
	// Small range: insertion sort places every element exactly.
	for i := lo + 1; i <= hi; i++ {
		x := s[i]
		j := i - 1
		for j >= lo && s[j] > x {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = x
	}
}

// median3 returns the median of three values.
func median3(a, b, c float64) float64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
		if a > b {
			b = a
		}
	}
	return b
}

// quantileSorted returns the q-quantile of a sorted slice with linear
// interpolation.
func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	i := int(math.Floor(pos))
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}

// Range is a variation range: the set of values an uncertain aggregate
// may take across the remaining mini-batches (§3.2 of the paper).
type Range struct {
	Lo, Hi float64
}

// VariationRange builds R(u) = [min(û)−ε, max(û)+ε] from the bootstrap
// replica values û and the slack ε. The current point estimate is
// included so the committed range always covers the running value.
func VariationRange(point float64, replicas []float64, eps float64) Range {
	lo, hi := point, point
	for _, x := range replicas {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return Range{Lo: lo - eps, Hi: hi + eps}
}

// Contains reports whether x lies in the range.
func (r Range) Contains(x float64) bool { return x >= r.Lo && x <= r.Hi }

// Overlaps reports whether two ranges intersect (the uncertain-set test:
// tuples whose operand ranges overlap may flip their predicate decision
// in a later batch).
func (r Range) Overlaps(o Range) bool { return r.Lo <= o.Hi && o.Lo <= r.Hi }

// Point builds a degenerate range {x} (the variation range of a
// deterministic value, as the paper defines R(d) = {d}).
func Point(x float64) Range { return Range{Lo: x, Hi: x} }
