// Package workload generates the two evaluation datasets of §5 and
// defines the query suite (SBI, C1–C3, Q11, Q17, Q18, Q20).
//
// The paper evaluates on (a) a 100 GB subset of a proprietary Conviva
// video-session trace and (b) a denormalized 100 GB TPC-H dataset. Both
// are unavailable here, so we synthesize laptop-scale equivalents that
// preserve what the experiments exercise: a single wide fact table whose
// nested-aggregate predicates select a non-trivial, converging subset of
// rows (see DESIGN.md §1 for the substitution rationale). Distributions
// are heavy-tailed where the real traces are (buffer times, quantities)
// and all generation is deterministic in the seed.
package workload

import (
	"math"

	"fluodb/internal/bootstrap"
	"fluodb/internal/storage"
	"fluodb/internal/types"
)

// countries weights approximate a popularity skew.
var countries = []string{"US", "IN", "BR", "DE", "FR", "GB", "JP", "MX", "CA", "AU"}
var countryCum = []float64{0.30, 0.48, 0.60, 0.68, 0.75, 0.81, 0.87, 0.92, 0.96, 1.0}

var devices = []string{"web", "mobile", "tv", "console"}
var deviceCum = []float64{0.40, 0.75, 0.95, 1.0}

func pickWeighted(r *bootstrap.RNG, names []string, cum []float64) string {
	u := r.Float64()
	for i, c := range cum {
		if u <= c {
			return names[i]
		}
	}
	return names[len(names)-1]
}

// lognormal draws exp(N(mu, sigma)).
func lognormal(r *bootstrap.RNG, mu, sigma float64) float64 {
	// Box–Muller
	u1 := r.Float64()
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return math.Exp(mu + sigma*z)
}

// SessionsSchema is the Conviva-style fact table layout (§6.1: session
// logs with session, content, ad and timing attributes, denormalized).
func SessionsSchema() types.Schema {
	return types.NewSchema(
		"session_id", types.KindInt,
		"user_id", types.KindInt,
		"content_id", types.KindInt,
		"ad_id", types.KindInt,
		"country", types.KindString,
		"device", types.KindString,
		"start_hour", types.KindInt,
		"buffer_time", types.KindFloat,
		"play_time", types.KindFloat,
		"join_attempts", types.KindInt,
		"join_failures", types.KindInt,
		"ad_impressions", types.KindInt,
		"ad_clicks", types.KindInt,
		"variant", types.KindString, // A/B testing arm (§6.2)
	)
}

// GenSessions synthesizes n session-log rows. Buffer times are
// log-normal (heavy tail); play time decreases with buffering plus
// noise, so the SBI-style queries select meaningful subsets; the "B"
// A/B-test arm gets a small causal lift in engagement.
func GenSessions(n int, seed uint64) *storage.Table {
	t := storage.NewTable("sessions", SessionsSchema())
	r := bootstrap.NewRNG(seed)
	for i := 0; i < n; i++ {
		bufTime := lognormal(r, 3.0, 0.8) // median ~20s, heavy tail
		if bufTime > 600 {
			bufTime = 600
		}
		variant := "A"
		lift := 0.0
		if r.Float64() < 0.5 {
			variant = "B"
			lift = 60 // arm B watches ~1 minute longer on average
		}
		play := 900 - 6*bufTime + lift + (r.Float64()-0.3)*400
		if play < 0 {
			play = 0
		}
		attempts := 1 + r.Intn(4)
		failures := 0
		for a := 0; a < attempts-1; a++ {
			if r.Float64() < 0.08+bufTime/2000 {
				failures++
			}
		}
		imps := r.Intn(8)
		clicks := 0
		for c := 0; c < imps; c++ {
			if r.Float64() < 0.04 {
				clicks++
			}
		}
		_ = t.Append(types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(r.Intn(n/4 + 1))),
			types.NewInt(int64(r.Intn(500))),
			types.NewInt(int64(r.Intn(50))),
			types.NewString(pickWeighted(r, countries, countryCum)),
			types.NewString(pickWeighted(r, devices, deviceCum)),
			types.NewInt(int64(r.Intn(24))),
			types.NewFloat(round2(bufTime)),
			types.NewFloat(round2(play)),
			types.NewInt(int64(attempts)),
			types.NewInt(int64(failures)),
			types.NewInt(int64(imps)),
			types.NewInt(int64(clicks)),
			types.NewString(variant),
		})
	}
	return t
}

func round2(f float64) float64 { return math.Round(f*100) / 100 }

// LineitemSchema is the denormalized TPC-H-style fact table (§5
// denormalizes TPC-H into a single fact table; part/supplier/order
// attributes are embedded).
func LineitemSchema() types.Schema {
	return types.NewSchema(
		"orderkey", types.KindInt,
		"linenumber", types.KindInt,
		"partkey", types.KindInt,
		"suppkey", types.KindInt,
		"custkey", types.KindInt,
		"quantity", types.KindFloat,
		"extendedprice", types.KindFloat,
		"discount", types.KindFloat,
		"brand", types.KindString,
		"container", types.KindString,
		"shipmode", types.KindString,
		"nation", types.KindString,
	)
}

var brands = []string{"Brand#11", "Brand#12", "Brand#23", "Brand#34", "Brand#45"}
var containers = []string{"SM BOX", "MED BOX", "LG BOX", "JUMBO PKG"}
var shipmodes = []string{"AIR", "SHIP", "TRUCK", "RAIL", "MAIL"}
var nations = []string{"GERMANY", "FRANCE", "CHINA", "BRAZIL", "CANADA"}

// GenLineitem synthesizes n denormalized lineitem rows over nParts
// parts and nParts/4 suppliers; ~4 lines per order.
func GenLineitem(n, nParts int, seed uint64) *storage.Table {
	t := storage.NewTable("lineitem", LineitemSchema())
	r := bootstrap.NewRNG(seed)
	if nParts < 1 {
		nParts = 1
	}
	nSupp := nParts/4 + 1
	for i := 0; i < n; i++ {
		pk := r.Intn(nParts)
		q := float64(1 + r.Intn(50))
		price := q * (900 + 100*lognormal(r, 0, 0.3))
		_ = t.Append(types.Row{
			types.NewInt(int64(i / 4)),
			types.NewInt(int64(i%4 + 1)),
			types.NewInt(int64(pk)),
			types.NewInt(int64((pk + r.Intn(4)) % nSupp)),
			types.NewInt(int64(r.Intn(n/8 + 1))),
			types.NewFloat(q),
			types.NewFloat(round2(price)),
			types.NewFloat(round2(r.Float64() * 0.1)),
			types.NewString(brands[pk%len(brands)]),
			types.NewString(containers[pk%len(containers)]),
			types.NewString(shipmodes[r.Intn(len(shipmodes))]),
			types.NewString(nations[r.Intn(len(nations))]),
		})
	}
	return t
}

// PartSuppSchema is the TPC-H-style partsupp table (kept separate — Q11
// and Q20 aggregate over it).
func PartSuppSchema() types.Schema {
	return types.NewSchema(
		"partkey", types.KindInt,
		"suppkey", types.KindInt,
		"availqty", types.KindInt,
		"supplycost", types.KindFloat,
		"nation", types.KindString,
	)
}

// GenPartSupp synthesizes the partsupp table: suppsPerPart suppliers for
// each of nParts parts.
func GenPartSupp(nParts, suppsPerPart int, seed uint64) *storage.Table {
	t := storage.NewTable("partsupp", PartSuppSchema())
	r := bootstrap.NewRNG(seed)
	nSupp := nParts/4 + 1
	for pk := 0; pk < nParts; pk++ {
		for s := 0; s < suppsPerPart; s++ {
			_ = t.Append(types.Row{
				types.NewInt(int64(pk)),
				types.NewInt(int64((pk + s) % nSupp)),
				types.NewInt(int64(1 + r.Intn(9999))),
				types.NewFloat(round2(1 + r.Float64()*999)),
				types.NewString(nations[r.Intn(len(nations))]),
			})
		}
	}
	return t
}

// ConvivaCatalog builds the Conviva-style catalog with n shuffled
// session rows.
func ConvivaCatalog(n int, seed uint64) *storage.Catalog {
	cat := storage.NewCatalog()
	cat.Put(GenSessions(n, seed).Shuffled(int64(seed) + 1))
	return cat
}

// TPCHCatalog builds the TPC-H-style catalog: n lineitem rows over
// nParts parts, plus a partsupp table scaled to roughly n/3 rows (TPC-H
// keeps partsupp the second-largest table; Q11 and Q20 stream it).
func TPCHCatalog(n, nParts int, seed uint64) *storage.Catalog {
	cat := storage.NewCatalog()
	cat.Put(GenLineitem(n, nParts, seed).Shuffled(int64(seed) + 1))
	supps := 4
	if nParts > 0 && n/(3*nParts) > supps {
		supps = n / (3 * nParts)
	}
	cat.Put(GenPartSupp(nParts, supps, seed+2).Shuffled(int64(seed) + 3))
	return cat
}

// Query is one named evaluation query.
type Query struct {
	Name string
	// Dataset is "conviva" or "tpch".
	Dataset string
	SQL     string
	// Description explains what the paper used it for.
	Description string
}

// Suite returns the evaluation queries of §5, adapted to the synthetic
// schemas (per the paper's footnote 12, very selective constants are
// relaxed so small samples are not degenerate).
func Suite() []Query {
	return []Query{
		{
			Name: "SBI", Dataset: "conviva",
			Description: "Slow Buffering Impact (Example 1): retention of sessions with above-average buffering",
			SQL: `SELECT AVG(play_time) FROM sessions
WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`,
		},
		{
			Name: "C1", Dataset: "conviva",
			Description: "histogram of play_time for sessions with abnormal (above-average) buffering",
			SQL: `SELECT FLOOR(play_time / 120) AS play_bucket, COUNT(*) AS sessions
FROM sessions
WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)
GROUP BY play_bucket`,
		},
		{
			Name: "C2", Dataset: "conviva",
			Description: "join-failure rate of sessions whose buffering exceeds mean + stddev",
			SQL: `SELECT AVG(join_failures / join_attempts) AS failure_rate, COUNT(*) AS sessions
FROM sessions
WHERE buffer_time > (SELECT AVG(buffer_time) + STDDEV(buffer_time) FROM sessions)`,
		},
		{
			Name: "C3", Dataset: "conviva",
			Description: "per-country retention of abnormal sessions (nested AVG + GROUP BY + HAVING)",
			SQL: `SELECT country, AVG(play_time) AS retention, COUNT(*) AS sessions
FROM sessions
WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)
GROUP BY country
HAVING COUNT(*) > 50`,
		},
		{
			Name: "Q11", Dataset: "tpch",
			Description: "parts whose stock value exceeds a fraction of the total (uncertain HAVING threshold)",
			SQL: `SELECT partkey, SUM(supplycost * availqty) AS value
FROM partsupp
GROUP BY partkey
HAVING SUM(supplycost * availqty) > (SELECT SUM(supplycost * availqty) * 0.006 FROM partsupp)`,
		},
		{
			Name: "Q17", Dataset: "tpch",
			Description: "small-quantity revenue with a per-part correlated average-quantity threshold",
			SQL: `SELECT SUM(extendedprice) / 7.0 AS avg_yearly
FROM lineitem l
WHERE quantity < (SELECT 0.5 * AVG(quantity) FROM lineitem i WHERE i.partkey = l.partkey)`,
		},
		{
			Name: "Q18", Dataset: "tpch",
			Description: "large orders: uncertain IN-membership from a grouped HAVING subquery",
			SQL: `SELECT custkey, orderkey, SUM(quantity) AS total_qty
FROM lineitem
WHERE orderkey IN (SELECT orderkey FROM lineitem GROUP BY orderkey HAVING SUM(quantity) > 170)
GROUP BY custkey, orderkey`,
		},
		{
			Name: "Q20", Dataset: "tpch",
			Description: "excess availability: partsupp rows stocked above half the correlated shipped quantity",
			SQL: `SELECT COUNT(*) AS excess_suppliers, AVG(availqty) AS avg_avail
FROM partsupp ps
WHERE availqty > (SELECT 0.5 * SUM(quantity) FROM lineitem i WHERE i.partkey = ps.partkey)`,
		},
	}
}

// ByName resolves a suite query.
func ByName(name string) (Query, bool) {
	for _, q := range Suite() {
		if q.Name == name {
			return q, true
		}
	}
	return Query{}, false
}
