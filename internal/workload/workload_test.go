package workload

import (
	"math"
	"testing"

	"fluodb/internal/core"
	"fluodb/internal/exec"
	"fluodb/internal/expr"
	"fluodb/internal/plan"
	"fluodb/internal/storage"
	"fluodb/internal/types"
)

func TestGenSessionsDeterministicAndShaped(t *testing.T) {
	a := GenSessions(500, 42)
	b := GenSessions(500, 42)
	c := GenSessions(500, 43)
	if a.NumRows() != 500 || len(a.Schema()) != len(SessionsSchema()) {
		t.Fatal("shape")
	}
	for i := range a.Rows() {
		for j := range a.Rows()[i] {
			if !types.Equal(a.Rows()[i][j], b.Rows()[i][j]) {
				t.Fatal("same seed must reproduce data")
			}
		}
	}
	diff := false
	for i := range a.Rows() {
		if !types.Equal(a.Rows()[i][7], c.Rows()[i][7]) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds should differ")
	}
}

func TestGenSessionsDistributions(t *testing.T) {
	tab := GenSessions(5000, 1)
	idxBuf := tab.Schema().ColumnIndex("buffer_time")
	idxPlay := tab.Schema().ColumnIndex("play_time")
	idxVar := tab.Schema().ColumnIndex("variant")
	var bufSum float64
	nB := 0
	var playA, playB float64
	var cntA, cntB int
	for _, r := range tab.Rows() {
		b, _ := r[idxBuf].AsFloat()
		p, _ := r[idxPlay].AsFloat()
		bufSum += b
		if b < 0 || b > 600 {
			t.Fatalf("buffer_time out of range: %v", b)
		}
		if p < 0 {
			t.Fatalf("negative play_time")
		}
		if r[idxVar].Str() == "B" {
			nB++
			playB += p
			cntB++
		} else {
			playA += p
			cntA++
		}
	}
	if frac := float64(nB) / 5000; frac < 0.45 || frac > 0.55 {
		t.Errorf("variant B fraction = %v", frac)
	}
	// A/B lift present (arm B ~60s longer on average)
	liftObs := playB/float64(cntB) - playA/float64(cntA)
	if liftObs < 30 || liftObs > 90 {
		t.Errorf("observed A/B lift = %v, want ≈60", liftObs)
	}
	// heavy tail: mean buffer well above the lognormal median (~20)
	if mean := bufSum / 5000; mean < 22 || mean > 40 {
		t.Errorf("mean buffer_time = %v", mean)
	}
}

func TestGenLineitemAndPartSupp(t *testing.T) {
	li := GenLineitem(1000, 50, 2)
	if li.NumRows() != 1000 {
		t.Fatal("rows")
	}
	idxPK := li.Schema().ColumnIndex("partkey")
	idxQ := li.Schema().ColumnIndex("quantity")
	seenParts := map[int64]bool{}
	for _, r := range li.Rows() {
		pk := r[idxPK].Int()
		if pk < 0 || pk >= 50 {
			t.Fatalf("partkey out of range: %d", pk)
		}
		seenParts[pk] = true
		q, _ := r[idxQ].AsFloat()
		if q < 1 || q > 50 {
			t.Fatalf("quantity out of range: %v", q)
		}
	}
	if len(seenParts) < 40 {
		t.Errorf("only %d parts used", len(seenParts))
	}
	ps := GenPartSupp(50, 4, 3)
	if ps.NumRows() != 200 {
		t.Errorf("partsupp rows = %d", ps.NumRows())
	}
}

func TestCatalogBuilders(t *testing.T) {
	cc := ConvivaCatalog(100, 4)
	if _, ok := cc.Get("sessions"); !ok {
		t.Fatal("sessions missing")
	}
	tc := TPCHCatalog(100, 10, 5)
	if _, ok := tc.Get("lineitem"); !ok {
		t.Fatal("lineitem missing")
	}
	if _, ok := tc.Get("partsupp"); !ok {
		t.Fatal("partsupp missing")
	}
}

func TestByName(t *testing.T) {
	if q, ok := ByName("Q17"); !ok || q.Dataset != "tpch" {
		t.Error("ByName(Q17)")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope)")
	}
}

// catalogFor builds the right catalog for a suite query at test scale.
func catalogFor(t *testing.T, q Query) *storage.Catalog {
	t.Helper()
	switch q.Dataset {
	case "conviva":
		return ConvivaCatalog(6000, 11)
	case "tpch":
		return TPCHCatalog(6000, 40, 12)
	default:
		t.Fatalf("unknown dataset %q", q.Dataset)
		return nil
	}
}

// TestSuiteOnlineMatchesExact is the end-to-end integration test: every
// evaluation query compiles, runs online through G-OLA, and its final
// snapshot equals the exact batch answer.
func TestSuiteOnlineMatchesExact(t *testing.T) {
	for _, wq := range Suite() {
		wq := wq
		t.Run(wq.Name, func(t *testing.T) {
			cat := catalogFor(t, wq)
			q, err := plan.Compile(wq.SQL, cat)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			exact, err := exec.Run(q, cat)
			if err != nil {
				t.Fatalf("exact: %v", err)
			}
			q2, _ := plan.Compile(wq.SQL, cat)
			eng, err := core.New(q2, cat, core.Options{Batches: 10, Trials: 20, Seed: 77})
			if err != nil {
				t.Fatalf("engine: %v", err)
			}
			final, err := eng.Run(nil)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			got := final.ValueRows()
			if len(got) != len(exact.Rows) {
				t.Fatalf("rows: got %d, want %d", len(got), len(exact.Rows))
			}
			// index exact rows by all-leading-key prefix (group columns
			// precede aggregates in every suite query)
			keyCols := groupKeyWidth(q)
			idx := map[string]types.Row{}
			for _, r := range exact.Rows {
				idx[r.KeyString(seq(keyCols))] = r
			}
			for _, g := range got {
				w, ok := idx[g.KeyString(seq(keyCols))]
				if !ok {
					t.Fatalf("unexpected group %v", g)
				}
				for c := keyCols; c < len(g); c++ {
					gf, gok := g[c].AsFloat()
					wf, wok := w[c].AsFloat()
					if gok != wok {
						t.Fatalf("col %d: %v vs %v", c, g[c], w[c])
					}
					if gok && math.Abs(gf-wf) > 1e-6*(1+math.Abs(wf)) {
						t.Fatalf("col %d: got %v, want %v", c, gf, wf)
					}
				}
			}
			t.Logf("%s: %d result rows, uncertain=%d recomputes=%d",
				wq.Name, len(got), final.UncertainRows, final.Recomputes)
		})
	}
}

// groupKeyWidth counts the leading select columns that are bound to
// group slots (group columns precede aggregates in every suite query).
func groupKeyWidth(q *plan.Query) int {
	n := 0
	for _, e := range q.Root.Select {
		col, ok := e.(*expr.Col)
		if !ok || col.Idx >= len(q.Root.GroupBy) {
			break
		}
		n++
	}
	return n
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
