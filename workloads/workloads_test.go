package workloads_test

import (
	"testing"

	"fluodb"
	"fluodb/workloads"
)

func TestAttachConviva(t *testing.T) {
	db := fluodb.Open()
	tab := workloads.AttachConviva(db, 300, 1)
	if tab.NumRows() != 300 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	res, err := db.Query("SELECT COUNT(*), COUNT(DISTINCT variant) FROM sessions")
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := res.Rows[0][0].AsFloat(); c != 300 {
		t.Errorf("count = %v", c)
	}
	if v, _ := res.Rows[0][1].AsFloat(); v != 2 {
		t.Errorf("variants = %v", v)
	}
}

func TestAttachTPCHScalesPartsupp(t *testing.T) {
	db := fluodb.Open()
	workloads.AttachTPCH(db, 3000, 20, 2)
	ps, ok := db.Table("partsupp")
	if !ok {
		t.Fatal("partsupp missing")
	}
	// suppsPerPart = max(4, 3000/(3*20)) = 50 → 20*50 = 1000 rows ≈ n/3
	if ps.NumRows() != 1000 {
		t.Errorf("partsupp rows = %d", ps.NumRows())
	}
}

func TestAttachByDataset(t *testing.T) {
	q, _ := workloads.ByName("SBI")
	db := fluodb.Open()
	workloads.Attach(db, q, 200, 3)
	if _, ok := db.Table("sessions"); !ok {
		t.Error("conviva attach")
	}
	q2, _ := workloads.ByName("Q11")
	db2 := fluodb.Open()
	workloads.Attach(db2, q2, 200, 4)
	if _, ok := db2.Table("partsupp"); !ok {
		t.Error("tpch attach")
	}
}

// TestSuiteRunsOnlineThroughPublicAPI runs every suite query through the
// public API at smoke scale.
func TestSuiteRunsOnlineThroughPublicAPI(t *testing.T) {
	for _, wq := range workloads.Suite() {
		db := fluodb.Open()
		workloads.Attach(db, wq, 1200, 5)
		oq, err := db.QueryOnline(wq.SQL, fluodb.OnlineOptions{Batches: 3, Trials: 8, Seed: 6})
		if err != nil {
			t.Fatalf("%s: %v", wq.Name, err)
		}
		last, err := oq.Run(nil)
		if err != nil {
			t.Fatalf("%s: %v", wq.Name, err)
		}
		if last == nil || last.FractionProcessed != 1 {
			t.Errorf("%s: incomplete run", wq.Name)
		}
	}
}
