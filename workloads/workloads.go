// Package workloads attaches the paper's evaluation datasets (synthetic
// Conviva-style session logs and denormalized TPC-H-style tables; see
// DESIGN.md §1 for the substitution rationale) to a fluodb.DB, and
// exposes the §5 query suite.
package workloads

import (
	"fluodb"
	"fluodb/internal/workload"
)

// Query is one named evaluation query from §5.
type Query = workload.Query

// Suite returns the §5 evaluation queries (SBI, C1–C3, Q11, Q17, Q18,
// Q20) adapted to the synthetic schemas.
func Suite() []Query { return workload.Suite() }

// ByName resolves a suite query by name.
func ByName(name string) (Query, bool) { return workload.ByName(name) }

// AttachConviva generates n shuffled Conviva-style session rows and
// registers them as table "sessions".
func AttachConviva(db *fluodb.DB, n int, seed uint64) *fluodb.Table {
	src := workload.GenSessions(n, seed).Shuffled(int64(seed) + 1)
	t := db.CreateTable("sessions", src.Schema())
	if err := t.AppendAll(src.Rows()); err != nil {
		panic(err) // generator and schema agree by construction
	}
	return t
}

// AttachTPCH generates the shuffled denormalized TPC-H-style tables:
// "lineitem" (n rows over nParts parts) and "partsupp".
func AttachTPCH(db *fluodb.DB, n, nParts int, seed uint64) {
	li := workload.GenLineitem(n, nParts, seed).Shuffled(int64(seed) + 1)
	t := db.CreateTable("lineitem", li.Schema())
	if err := t.AppendAll(li.Rows()); err != nil {
		panic(err)
	}
	supps := 4
	if nParts > 0 && n/(3*nParts) > supps {
		supps = n / (3 * nParts)
	}
	ps := workload.GenPartSupp(nParts, supps, seed+2).Shuffled(int64(seed) + 3)
	t2 := db.CreateTable("partsupp", ps.Schema())
	if err := t2.AppendAll(ps.Rows()); err != nil {
		panic(err)
	}
}

// Attach builds the right dataset for a suite query at the given scale:
// sessions for "conviva", lineitem+partsupp for "tpch".
func Attach(db *fluodb.DB, q Query, rows int, seed uint64) {
	switch q.Dataset {
	case "conviva":
		AttachConviva(db, rows, seed)
	default:
		AttachTPCH(db, rows, rows/150+10, seed)
	}
}
