// Benchmarks regenerating the paper's evaluation (§5). One benchmark per
// figure/table — see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured results. Run with:
//
//	go test -bench=. -benchmem
//
// The flbench command runs the same experiments at larger scales and
// prints the full series.
package fluodb_test

import (
	"testing"

	"fluodb"
	"fluodb/internal/bench"
	"fluodb/workloads"
)

// benchCfg keeps `go test -bench=.` minutes-scale on one core; use
// flbench -rows 1000000 for the full-size runs recorded in
// EXPERIMENTS.md.
var benchCfg = bench.Config{Rows: 20000, Batches: 10, Trials: 40, Seed: 1}

// BenchmarkFigure3a regenerates Figure 3(a): the RSD-vs-time refinement
// curve of TPC-H Q17 under G-OLA against the batch engine bar.
func BenchmarkFigure3a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure3a(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.FirstAnswerPct, "firstAnswer_%ofBatch")
		b.ReportMetric(r.OverheadPct, "overhead_%")
		if r.SpeedupAt2PctRSD > 0 {
			b.ReportMetric(r.SpeedupAt2PctRSD, "speedup@2%RSD_x")
		}
	}
}

// BenchmarkFigure3b regenerates Figure 3(b): per-batch CDM/G-OLA time
// ratios for C1, C2, C3, Q11, Q17, Q18, Q20.
func BenchmarkFigure3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := bench.Figure3b(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		// Report the last-batch ratio averaged over queries (the paper's
		// claim: grows linearly with the batch index).
		var first, last float64
		for _, s := range series {
			first += s.Ratio[0]
			last += s.Ratio[len(s.Ratio)-1]
		}
		n := float64(len(series))
		b.ReportMetric(first/n, "ratio@batch1")
		b.ReportMetric(last/n, "ratio@batch10")
	}
}

// BenchmarkTable1 regenerates the §5 prose claims around Figure 3(a):
// first-answer latency, refresh cadence, total overhead, speedup.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Table1(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanRefreshMS, "refresh_ms")
		b.ReportMetric(r.FinalRSDPct, "finalRSD_%")
	}
}

// BenchmarkTable2 regenerates the "uncertain sets are very small in
// practice" claim (§3.2/§5) across all eight evaluation queries.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table2(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		var maxPct float64
		for _, r := range rows {
			if r.MaxPctOfSeen > maxPct {
				maxPct = r.MaxPctOfSeen
			}
		}
		b.ReportMetric(maxPct, "maxUncertain_%ofSeen")
	}
}

// BenchmarkAblationEpsilon regenerates ablation A1: the ε slack trade
// between recomputation count and uncertain-set size (§3.2).
func BenchmarkAblationEpsilon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := bench.AblationEpsilon(benchCfg, []float64{0.05, 1.0, 4.0})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(pts[0].Recomputes), "recomputes@0.05σ")
		b.ReportMetric(float64(pts[2].Recomputes), "recomputes@4σ")
		b.ReportMetric(float64(pts[2].MaxUncertain), "uncertain@4σ")
	}
}

// BenchmarkAblationBootstrap regenerates ablation A2: bootstrap trial
// count versus overhead (§2.2).
func BenchmarkAblationBootstrap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := bench.AblationBootstrap(benchCfg, []int{20, 100})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[1].TotalMS/pts[0].TotalMS, "cost_100vs20_x")
	}
}

// BenchmarkAblationBatches regenerates ablation A3: mini-batch
// granularity versus refresh cadence and total overhead (§2.1).
func BenchmarkAblationBatches(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := bench.AblationBatches(benchCfg, []int{5, 20})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].TotalMS, "total_ms_k5")
		b.ReportMetric(pts[1].TotalMS, "total_ms_k20")
	}
}

// --- engine micro-benchmarks ---

// BenchmarkBatchEngineSBI measures the exact batch engine on the SBI
// query (the per-iteration unit of the Figure 3 comparisons).
func BenchmarkBatchEngineSBI(b *testing.B) {
	db := fluodb.Open()
	workloads.AttachConviva(db, 20000, 2)
	sbi, _ := workloads.ByName("SBI")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(sbi.SQL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnlineStepSBI measures one G-OLA mini-batch step (fold +
// delta maintenance + bootstrap + snapshot) on SBI.
func BenchmarkOnlineStepSBI(b *testing.B) {
	db := fluodb.Open()
	workloads.AttachConviva(db, 20000, 3)
	sbi, _ := workloads.ByName("SBI")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		oq, err := db.QueryOnline(sbi.SQL, fluodb.OnlineOptions{Batches: 10, Trials: 40, Seed: 4})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := oq.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseAndPlan measures SQL frontend latency on the most
// complex suite query.
func BenchmarkParseAndPlan(b *testing.B) {
	db := fluodb.Open()
	workloads.AttachTPCH(db, 100, 10, 5)
	q18, _ := workloads.ByName("Q18")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Explain(q18.SQL); err != nil {
			b.Fatal(err)
		}
	}
}
