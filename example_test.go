package fluodb_test

import (
	"fmt"

	"fluodb"
)

// sessionsDB builds a deterministic six-row sessions table.
func sessionsDB() *fluodb.DB {
	db := fluodb.Open()
	t := db.CreateTable("sessions", fluodb.NewSchema(
		"buffer_time", fluodb.KindFloat,
		"play_time", fluodb.KindFloat,
	))
	for i := 1; i <= 6; i++ {
		_ = t.Append(fluodb.Row{
			fluodb.Float(float64(10 * i)),
			fluodb.Float(float64(100 * i)),
		})
	}
	return db
}

// The exact batch engine answers any supported query over the full data.
func ExampleDB_Query() {
	db := sessionsDB()
	res, _ := db.Query(`
		SELECT AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`)
	fmt.Println(res.Rows[0][0])
	// Output: 500
}

// Online execution streams random mini-batches and refines the answer;
// running to completion yields the exact result.
func ExampleDB_QueryOnline() {
	db := sessionsDB()
	oq, _ := db.QueryOnline(`SELECT AVG(play_time) FROM sessions`,
		fluodb.OnlineOptions{Batches: 3, Trials: 10, Seed: 1})
	last, _ := oq.Run(nil)
	fmt.Printf("%.0f after %d batches\n",
		mustF(last.Rows[0][0].Value), last.Batch)
	// Output: 350 after 3 batches
}

// Exec handles DDL and DML alongside SELECT.
func ExampleDB_Exec() {
	db := fluodb.Open()
	_, _ = db.Exec(`CREATE TABLE points (x INT, y DOUBLE)`)
	r, _ := db.Exec(`INSERT INTO points VALUES (1, 2.5), (2, 4.5)`)
	fmt.Println("inserted:", r.RowsAffected)
	res, _ := db.Exec(`SELECT SUM(y) FROM points`)
	fmt.Println("sum:", res.Result.Rows[0][0])
	// Output:
	// inserted: 2
	// sum: 7
}

// Explain shows the lineage-block decomposition G-OLA executes.
func ExampleDB_Explain() {
	db := sessionsDB()
	out, _ := db.Explain(`
		SELECT AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`)
	fmt.Println(out[:16])
	// Output: block 0 (scalar)
}

func mustF(v fluodb.Value) float64 {
	f, _ := v.AsFloat()
	return f
}
